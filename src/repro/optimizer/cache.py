"""Session-scoped semantic result & subplan cache with subsumption.

Pushdown engines bill per request and per byte scanned, and real
workloads are dominated by near-duplicate queries — the same pushed
filter or partial aggregate re-issued with slightly different literals.
This module caches the *metered* part of a plan (the pushed S3 Select
scan streams and pushed-aggregate partials) under the same normalized
signatures the feedback layer uses, and answers later scans from memory
in three tiers:

1. **exact hit** — same table, same normalized predicate, projection a
   subset of the cached columns: replay the cached columnar batches
   with zero metered requests.
2. **predicate subsumption** — the new predicate is *provably implied*
   by a cached scan's predicate (``pruning.predicate_implies``, built
   on the zone-map three-valued possibility analysis): replay the
   cached batches through a local delta filter instead of re-issuing
   partition requests.
3. **partial-aggregate reuse** — a pushed additive aggregate whose
   WHERE matches a cached one recombines the cached per-partition
   partials (any subset/permutation of the cached aggregate items)
   without touching storage.

Entries are LRU-evicted under a ``cache_bytes`` budget, guarded by one
lock (the streaming executor scans partitions from worker threads), and
versioned by table content: :func:`repro.engine.catalog.load_table`
calls :meth:`SemanticCache.invalidate_table` whenever a name is
(re)loaded, so stale entries can never answer.

Correctness bar: a cold cache changes nothing (the executor consults it
only when enabled, and population tees streams without reordering), and
a warm answer is row-identical — cached batches preserve the partition
order and batch segmentation of the original scan, and the delta filter
is the same vectorized predicate the local tail would run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.engine.batch import Batch
from repro.optimizer.feedback import predicate_signature
from repro.optimizer.pruning import predicate_implies
from repro.sqlparser import ast


@dataclass
class CacheStats:
    """Session counters, surfaced in ``execution.details['cache']``."""

    hits: int = 0
    subsumed: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0

    def summary(self) -> dict:
        return {
            "hits": self.hits,
            "subsumed": self.subsumed,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class ScanReuse:
    """A cache answer for a pushed scan, ready to replay.

    ``batches`` are column views over the cached batches, ordered as the
    requested projection plus ``extra`` trailing helper columns the
    delta predicate needs (trimmed again after filtering).
    """

    status: str  # "hit" | "subsumed"
    batches: list[Batch]
    names: list[str]
    delta: ast.Expr | None
    extra: int
    rows: int


@dataclass
class AggregateReuse:
    """Cached per-partition partials projected to the requested items."""

    status: str  # always "hit" — aggregates require an exact WHERE match
    partials: list[list]


@dataclass
class _Entry:
    table: str
    version: int
    nbytes: int
    rows: int
    # scan entries
    predicate: ast.Expr | None = None
    columns: tuple[str, ...] = ()
    batches: list[Batch] = field(default_factory=list)
    # aggregate entries
    items: tuple[str, ...] = ()
    partials: list[list] = field(default_factory=list)


def _value_bytes(value) -> int:
    if value is None:
        return 8
    if isinstance(value, str):
        return 49 + len(value)
    return 28


def _batch_bytes(batches: list[Batch]) -> int:
    total = 0
    for batch in batches:
        total += 64
        for column in batch.columns:
            total += 64 + sum(_value_bytes(v) for v in column)
    return total


class SemanticCache:
    """Thread-safe, size-bounded LRU over pushed scan/aggregate results."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError(
                f"cache_bytes must be >= 0, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._versions: dict[str, int] = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self.stats = CacheStats()

    # -- bookkeeping ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def version(self, table: str) -> int:
        with self._lock:
            return self._versions.get(table.lower(), 0)

    def invalidate_table(self, table: str) -> int:
        """Drop every entry derived from ``table`` and bump its version.

        Called from the catalog's load hook, so re-loading a name can
        never serve rows from the previous content.  Returns the number
        of entries evicted.
        """
        key = table.lower()
        with self._lock:
            self._versions[key] = self._versions.get(key, 0) + 1
            dead = [k for k, e in self._entries.items() if e.table == key]
            for k in dead:
                self._bytes -= self._entries.pop(k).nbytes
            if dead:
                self.stats.invalidations += len(dead)
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def _admit(self, key: tuple, entry: _Entry) -> bool:
        """Insert under the byte budget; evict LRU entries as needed."""
        if entry.nbytes > self.capacity_bytes:
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key] = entry
        self._bytes += entry.nbytes
        while self._bytes > self.capacity_bytes and len(self._entries) > 1:
            victim_key = next(iter(self._entries))
            if victim_key == key:
                break
            self._bytes -= self._entries.pop(victim_key).nbytes
            self.stats.evictions += 1
        self.stats.stores += 1
        return True

    # -- pushed scans --------------------------------------------------

    def store_scan(
        self,
        table: str,
        predicate: ast.Expr | None,
        columns: list[str],
        batches: list[Batch],
    ) -> bool:
        """Retain a fully-drained pushed scan's batch stream."""
        table_key = table.lower()
        cols = tuple(c.lower() for c in columns)
        key = ("scan", table_key, predicate_signature(predicate), cols)
        entry = _Entry(
            table=table_key,
            version=self.version(table),
            nbytes=_batch_bytes(batches),
            rows=sum(len(b) for b in batches),
            predicate=predicate,
            columns=cols,
            batches=list(batches),
        )
        with self._lock:
            return self._admit(key, entry)

    def _match_scan(
        self, table: str, predicate: ast.Expr | None, columns: list[str]
    ) -> tuple[tuple, _Entry, str] | None:
        """Find the best reusable entry; caller holds the lock."""
        table_key = table.lower()
        current = self._versions.get(table_key, 0)
        sig = predicate_signature(predicate)
        requested = {c.lower() for c in columns}
        pred_cols = (
            {c.lower() for c in ast.referenced_columns(predicate)}
            if predicate is not None else set()
        )
        best: tuple[tuple, _Entry, str] | None = None
        for key, entry in self._entries.items():
            if key[0] != "scan" or entry.table != table_key:
                continue
            if entry.version != current:
                continue
            available = set(entry.columns)
            if not requested <= available:
                continue
            entry_sig = predicate_signature(entry.predicate)
            if entry_sig == sig:
                return key, entry, "hit"
            if not pred_cols <= available:
                continue
            if predicate_implies(predicate, entry.predicate):
                if best is None or entry.rows < best[1].rows:
                    best = (key, entry, "subsumed")
        return best

    def lookup_scan(
        self, table: str, predicate: ast.Expr | None, columns: list[str]
    ) -> ScanReuse | None:
        """Tiered lookup for a pushed scan; ``None`` on miss."""
        with self._lock:
            match = self._match_scan(table, predicate, columns)
            if match is None:
                self.stats.misses += 1
                return None
            key, entry, status = match
            self._entries.move_to_end(key)
            if status == "hit":
                self.stats.hits += 1
            else:
                self.stats.subsumed += 1
            index = {name: i for i, name in enumerate(entry.columns)}
            names = [c.lower() for c in columns]
            extras: list[str] = []
            delta = None
            if status == "subsumed":
                delta = predicate
                seen = set(names)
                for name in sorted(
                    c.lower() for c in ast.referenced_columns(predicate)
                ):
                    if name not in seen:
                        extras.append(name)
            take = [index[name] for name in names + extras]
            batches = [
                Batch([b.columns[i] for i in take], len(b))
                for b in entry.batches
            ]
            return ScanReuse(
                status=status,
                batches=batches,
                names=names + extras,
                delta=delta,
                extra=len(extras),
                rows=entry.rows,
            )

    def peek_scan(
        self, table: str, predicate: ast.Expr | None, columns: list[str]
    ) -> str | None:
        """Non-mutating match for the cost model: status or ``None``."""
        with self._lock:
            match = self._match_scan(table, predicate, columns)
            return None if match is None else match[2]

    # -- pushed aggregates ---------------------------------------------

    def store_aggregate(
        self,
        table: str,
        where: ast.Expr | None,
        items: list[str],
        partials: list[list],
    ) -> bool:
        """Retain a pushed aggregate's per-partition partial rows.

        ``items`` are the normalized SQL of each aggregate expression
        (alias-insensitive), aligned with the partial-row columns.
        """
        table_key = table.lower()
        item_key = tuple(items)
        key = ("agg", table_key, predicate_signature(where), item_key)
        nbytes = 64 + sum(
            _value_bytes(v) for row in partials for v in row
        )
        entry = _Entry(
            table=table_key,
            version=self.version(table),
            nbytes=nbytes,
            rows=len(partials),
            predicate=where,
            items=item_key,
            partials=[list(row) for row in partials],
        )
        with self._lock:
            return self._admit(key, entry)

    def _match_aggregate(
        self, table: str, where: ast.Expr | None, items: list[str]
    ) -> tuple[tuple, _Entry, list[int]] | None:
        table_key = table.lower()
        current = self._versions.get(table_key, 0)
        sig = predicate_signature(where)
        for key, entry in self._entries.items():
            if key[0] != "agg" or entry.table != table_key:
                continue
            if entry.version != current:
                continue
            if predicate_signature(entry.predicate) != sig:
                continue
            index = {item: i for i, item in enumerate(entry.items)}
            if all(item in index for item in items):
                return key, entry, [index[item] for item in items]
        return None

    def lookup_aggregate(
        self, table: str, where: ast.Expr | None, items: list[str]
    ) -> AggregateReuse | None:
        """Recombinable partials for a pushed aggregate; ``None`` on miss."""
        with self._lock:
            match = self._match_aggregate(table, where, items)
            if match is None:
                self.stats.misses += 1
                return None
            key, entry, take = match
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return AggregateReuse(
                status="hit",
                partials=[[row[i] for i in take] for row in entry.partials],
            )

    def peek_aggregate(
        self, table: str, where: ast.Expr | None, items: list[str]
    ) -> str | None:
        with self._lock:
            match = self._match_aggregate(table, where, items)
            return None if match is None else "hit"


# ----------------------------------------------------------------------
# plan harvesting (mirrors optimizer.feedback.harvest_plan)
# ----------------------------------------------------------------------


def harvest_plan(cache: SemanticCache, root) -> int:
    """Populate ``cache`` from a fully-executed plan tree.

    Same completeness walk as the feedback harvest: a LIMIT falsifies
    ``complete`` for everything beneath it (the stream may have been cut
    short), and MaterializedNode wrappers are descended.  Only nodes
    that actually drained their stream contribute.  Returns the number
    of entries stored.
    """
    from repro.planner import physical

    stored = 0

    def walk(node, complete: bool) -> None:
        nonlocal stored
        if isinstance(node, physical.MaterializedNode):
            if node.source is not None:
                walk(node.source, complete)
            return
        if isinstance(
            node, (physical.ScanNode, physical.PushedAggregateNode)
        ):
            if complete:
                stored += node.flush_cache(cache)
            return
        child_complete = complete and not isinstance(node, physical.LimitNode)
        for child in node.children():
            walk(child, child_complete)

    walk(root, True)
    return stored


def collect_statuses(root) -> dict[str, int]:
    """Per-plan ``{hit, subsumed, miss}`` counts from annotated nodes."""
    from repro.planner import physical

    counts = {"hit": 0, "subsumed": 0, "miss": 0}

    def walk(node) -> None:
        if isinstance(node, physical.MaterializedNode):
            if node.source is not None:
                walk(node.source)
            return
        status = getattr(node, "cache_status", None)
        if status in counts:
            counts[status] += 1
        for child in node.children():
            walk(child)

    walk(root)
    return counts
