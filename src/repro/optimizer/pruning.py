"""Static partition pruning: refute zone maps against pushed predicates.

The paper's pushdown model only ever shrinks *bytes per request* — every
partition object is still fetched or SELECTed.  Zone maps (per-partition
min/max/null-count, collected free during the load-time stats pass) let
a pushdown scan skip whole partitions whose envelope proves the pushed
predicate can never be true there, cutting the request count itself.

Refutation is a three-valued *possibility* analysis.  For each
expression over a partition's zone map we compute an over-approximation
``(can_be_true, can_be_false, can_be_null)``: a flag is only ``False``
when the zone map *proves* that outcome impossible for every row of the
partition.  A partition is prunable exactly when ``can_be_true`` is
``False`` — rows where the predicate is FALSE or NULL are filtered out
anyway, so only possibly-TRUE partitions must be scanned.  Anything the
analysis cannot decide degrades to "all three possible", which never
prunes; correctness is therefore one-sided by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optimizer.stats import ColumnZone, PartitionZoneMap
from repro.sqlparser import ast


@dataclass(frozen=True)
class _Tri:
    """Possible outcomes of a predicate over one partition's rows."""

    true: bool
    false: bool
    null: bool


#: The conservative "anything could happen" verdict.
_ANY = _Tri(True, True, True)


def partition_may_match(
    predicate: ast.Expr | None, zone: PartitionZoneMap
) -> bool:
    """Whether ``predicate`` could be TRUE for some row of the partition."""
    if predicate is None:
        return True
    if not zone.row_count:
        # An empty partition contributes no rows no matter the predicate.
        return False
    return _tri(predicate, zone).true


def keep_partitions(table, predicate: ast.Expr | None) -> list[int] | None:
    """Partition indices a pushed ``predicate`` cannot refute.

    Returns ``None`` when pruning is inapplicable (no predicate, no zone
    maps, or zone maps out of sync with the partition list) *or* when
    nothing was pruned — callers treat ``None`` as "scan everything".
    When every partition is refuted, one partition is still kept: pushed
    aggregates need at least one response to shape their result, and the
    single wasted request keeps the executor's phase math trivial.
    """
    zone_maps = getattr(table, "zone_maps", None)
    if predicate is None or not zone_maps:
        return None
    if len(zone_maps) != len(table.keys):
        return None
    keep = [
        i for i, zone in enumerate(zone_maps)
        if partition_may_match(predicate, zone)
    ]
    if not keep:
        keep = [0]
    if len(keep) == len(table.keys):
        return None
    return keep


# ----------------------------------------------------------------------
# predicate implication (semantic-cache subsumption)
# ----------------------------------------------------------------------

#: Sentinel bounds for one-sided envelopes.  Comparisons against a
#: non-numeric domain raise TypeError inside ``_compare_zone``, which
#: degrades to ``_ANY`` — conservative, never unsound.
_NEG_INF = float("-inf")
_POS_INF = float("inf")


def predicate_implies(new: ast.Expr | None, cached: ast.Expr | None) -> bool:
    """Sound check that ``new`` implies ``cached``.

    True only when every row on which ``new`` evaluates TRUE also makes
    ``cached`` TRUE — i.e. the rows a scan with predicate ``new`` wants
    are a subset of the rows a cached scan with predicate ``cached``
    already holds.  Two layers, both one-sided:

    1. textual: cached conjuncts that appear verbatim (by normalized
       SQL) among ``new``'s conjuncts are trivially implied;
    2. semantic: the remaining cached conjuncts are evaluated with the
       zone-map possibility analysis against a synthetic *envelope*
       over-approximating the set of rows where ``new`` is TRUE.  A
       conjunct is implied only when the analysis proves it can be
       neither FALSE nor NULL anywhere inside that envelope.

    Anything unprovable returns False — a missed reuse, never a wrong
    answer.
    """
    if cached is None:
        return True
    if new is None:
        return False
    new_sigs = {c.to_sql() for c in ast.split_conjuncts(new)}
    remaining = [
        c for c in ast.split_conjuncts(cached) if c.to_sql() not in new_sigs
    ]
    if not remaining:
        return True
    env = predicate_envelope(new)
    return all(
        not v.false and not v.null
        for v in (_tri(conjunct, env) for conjunct in remaining)
    )


def predicate_envelope(predicate: ast.Expr) -> PartitionZoneMap:
    """A synthetic zone map over-approximating rows where ``predicate``
    is TRUE.

    Only column-vs-literal range conjuncts (``=``, ``<``, ``<=``, ``>``,
    ``>=``, non-negated BETWEEN/IN over literals) contribute bounds;
    every such conjunct must be TRUE, so its column is provably non-NULL
    and inside the accumulated ``[lo, hi]``.  Columns constrained only
    by shapes the builder does not understand are simply absent, which
    the possibility analysis treats as "anything possible" — the
    envelope only ever grows, keeping implication one-sided.
    """
    bounds: dict[str, list] = {}

    def tighten(name: str, lo=None, hi=None) -> None:
        entry = bounds.get(name.lower())
        if entry is None:
            entry = bounds[name.lower()] = [_NEG_INF, _POS_INF]
        elif entry is _INCOMPARABLE:
            return
        try:
            if lo is not None and (entry[0] is _NEG_INF or lo > entry[0]):
                entry[0] = lo
            if hi is not None and (entry[1] is _POS_INF or hi < entry[1]):
                entry[1] = hi
        except TypeError:
            # Mixed-type bounds on one column (e.g. int vs str): give up
            # on this column entirely rather than keep a half-right box.
            bounds[name.lower()] = _INCOMPARABLE

    for conjunct in ast.split_conjuncts(predicate):
        if isinstance(conjunct, ast.Binary):
            from repro.optimizer.selectivity import _column_literal

            normalized = _column_literal(conjunct)
            if normalized is None:
                continue
            column, value, op = normalized
            if value is None:
                continue
            if op == "=":
                tighten(column.name, lo=value, hi=value)
            elif op in ("<", "<="):
                tighten(column.name, hi=value)
            elif op in (">", ">="):
                tighten(column.name, lo=value)
        elif isinstance(conjunct, ast.Between) and not conjunct.negated:
            if (
                isinstance(conjunct.operand, ast.Column)
                and isinstance(conjunct.low, ast.Literal)
                and isinstance(conjunct.high, ast.Literal)
                and conjunct.low.value is not None
                and conjunct.high.value is not None
            ):
                tighten(
                    conjunct.operand.name,
                    lo=conjunct.low.value,
                    hi=conjunct.high.value,
                )
        elif isinstance(conjunct, ast.InList) and not conjunct.negated:
            if isinstance(conjunct.operand, ast.Column) and conjunct.items:
                values = [
                    item.value for item in conjunct.items
                    if isinstance(item, ast.Literal) and item.value is not None
                ]
                if len(values) != len(conjunct.items):
                    continue
                try:
                    tighten(
                        conjunct.operand.name, lo=min(values), hi=max(values)
                    )
                except TypeError:
                    continue
    columns = {
        name: ColumnZone(entry[0], entry[1], 0)
        for name, entry in bounds.items()
        if entry is not _INCOMPARABLE
    }
    return PartitionZoneMap(row_count=1, columns=columns)


#: Marker for a column whose accumulated bounds mixed incomparable types.
_INCOMPARABLE: list = []


# ----------------------------------------------------------------------
# the possibility evaluator
# ----------------------------------------------------------------------


def _tri(expr: ast.Expr, zone: PartitionZoneMap) -> _Tri:
    if isinstance(expr, ast.Binary):
        if expr.op == "AND":
            a, b = _tri(expr.left, zone), _tri(expr.right, zone)
            return _Tri(
                a.true and b.true, a.false or b.false, a.null or b.null
            )
        if expr.op == "OR":
            a, b = _tri(expr.left, zone), _tri(expr.right, zone)
            return _Tri(
                a.true or b.true, a.false and b.false, a.null or b.null
            )
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison(expr, zone)
        return _ANY
    if isinstance(expr, ast.Unary) and expr.op == "NOT":
        inner = _tri(expr.operand, zone)
        return _Tri(inner.false, inner.true, inner.null)
    if isinstance(expr, ast.Between):
        return _between(expr, zone)
    if isinstance(expr, ast.InList):
        return _in_list(expr, zone)
    if isinstance(expr, ast.IsNull):
        return _is_null(expr, zone)
    if isinstance(expr, ast.Like):
        return _like(expr, zone)
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return _Tri(True, False, False)
        if expr.value is False:
            return _Tri(False, True, False)
        if expr.value is None:
            return _Tri(False, False, True)
    return _ANY


def _column_zone(expr: ast.Expr, zone: PartitionZoneMap) -> ColumnZone | None:
    if isinstance(expr, ast.Column):
        return zone.column(expr.name)
    return None


def _comparison(expr: ast.Binary, zone: PartitionZoneMap) -> _Tri:
    from repro.optimizer.selectivity import _column_literal

    normalized = _column_literal(expr)
    if normalized is None:
        return _ANY
    column, value, op = normalized
    cz = zone.column(column.name)
    if cz is None:
        # Column absent from the zone map: nothing provable.
        return _ANY
    if value is None:
        # ``col op NULL`` is NULL for every row.
        return _Tri(False, False, True)
    return _compare_zone(cz, value, op, zone.row_count)


def _compare_zone(cz: ColumnZone, value, op: str, row_count: int) -> _Tri:
    nullable = cz.null_count > 0
    lo, hi = cz.min_value, cz.max_value
    if lo is None:
        # Every value in the partition is NULL: any comparison is NULL.
        return _Tri(False, False, True)
    try:
        if op == "=":
            can_true = lo <= value <= hi
            can_false = not (lo == hi == value)
        elif op == "<>":
            can_true = not (lo == hi == value)
            can_false = lo <= value <= hi
        elif op == "<":
            can_true = lo < value
            can_false = hi >= value
        elif op == "<=":
            can_true = lo <= value
            can_false = hi > value
        elif op == ">":
            can_true = hi > value
            can_false = lo <= value
        elif op == ">=":
            can_true = hi >= value
            can_false = lo < value
        else:
            return _ANY
    except TypeError:
        # Incomparable literal/domain (e.g. string vs int): no proof.
        return _ANY
    return _Tri(bool(can_true), bool(can_false), nullable)


def _between(expr: ast.Between, zone: PartitionZoneMap) -> _Tri:
    inside = _tri(
        ast.Binary(
            "AND",
            ast.Binary(">=", expr.operand, expr.low),
            ast.Binary("<=", expr.operand, expr.high),
        ),
        zone,
    )
    if expr.negated:
        return _Tri(inside.false, inside.true, inside.null)
    return inside


def _in_list(expr: ast.InList, zone: PartitionZoneMap) -> _Tri:
    # ``x IN (a, b, ...)`` is the OR of the equalities; non-literal items
    # defeat the analysis for that disjunct.
    verdict: _Tri | None = None
    for item in expr.items:
        if isinstance(item, ast.Literal):
            term = _tri(ast.Binary("=", expr.operand, item), zone)
        else:
            term = _ANY
        if verdict is None:
            verdict = term
        else:
            verdict = _Tri(
                verdict.true or term.true,
                verdict.false and term.false,
                verdict.null or term.null,
            )
    if verdict is None:  # empty IN list: vacuously false
        verdict = _Tri(False, True, False)
    if expr.negated:
        return _Tri(verdict.false, verdict.true, verdict.null)
    return verdict


def _is_null(expr: ast.IsNull, zone: PartitionZoneMap) -> _Tri:
    cz = _column_zone(expr.operand, zone)
    if cz is None:
        return _ANY
    some_null = cz.null_count > 0
    some_value = cz.null_count < zone.row_count
    if expr.negated:  # IS NOT NULL
        return _Tri(some_value, some_null, False)
    return _Tri(some_null, some_value, False)


def _like(expr: ast.Like, zone: PartitionZoneMap) -> _Tri:
    # Pattern matching is not refutable from an envelope — except on an
    # all-NULL column, where LIKE and NOT LIKE are both NULL everywhere.
    cz = _column_zone(expr.operand, zone)
    if cz is not None and cz.min_value is None and zone.row_count:
        return _Tri(False, False, True)
    return _ANY
