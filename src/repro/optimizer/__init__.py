"""Cost-based optimizer: statistics, per-strategy cost model, chooser.

The paper's central observation (Sections IV-VII, Figures 1-9) is that
no pushdown strategy dominates: server-side vs S3-side filtering flips
with selectivity, Bloom joins win only below a size ratio, S3-side
group-by degrades with the group count, and sampling top-K needs K well
under the table size.  This package makes the reproduction choose for
itself:

* :mod:`repro.optimizer.stats` — per-table/per-column statistics
  collected at load time into the catalog;
* :mod:`repro.optimizer.selectivity` — predicate selectivity estimation
  from those statistics, plus an optional (metered) ScanRange sampling
  probe;
* :mod:`repro.optimizer.cost` — per-candidate predictions of requests,
  bytes scanned/returned/transferred, simulated runtime and dollar cost,
  built on the *same* :mod:`repro.cloud.perf` phase math and
  :mod:`repro.cloud.pricing` sheet the execution layer is billed with;
* :mod:`repro.optimizer.chooser` — ranks the candidates, runs the
  winner, and renders an EXPLAIN-style report;
* :mod:`repro.optimizer.feedback` — the session feedback store: every
  executed plan's measured selectivities and join cardinalities
  override the System-R heuristics for the rest of the session, and
  the adaptive executor re-plans mid-flight around them.
"""

from repro.optimizer.chooser import (  # noqa: F401
    Choice,
    choose,
    choose_filter_strategy,
    choose_group_by_strategy,
    choose_join_strategy,
    choose_top_k_strategy,
    explain_choice,
    render_choice_summary,
    run_auto,
)
from repro.optimizer.cost import CostModel, StrategyEstimate  # noqa: F401
from repro.optimizer.feedback import (  # noqa: F401
    FeedbackStore,
    estimate_selectivity_with_feedback,
    harvest_plan,
)
from repro.optimizer.selectivity import (  # noqa: F401
    estimate_selectivity,
    probe_selectivity,
)
from repro.optimizer.stats import (  # noqa: F401
    ColumnStats,
    TableStats,
    collect_table_stats,
)
