"""Table statistics collected at load time for the cost-based optimizer.

Loading already walks every row to encode the partition objects, so the
statistics pass is cheap and exact: row count, encoded row width,
per-column distinct counts, min/max, NULL counts, mean encoded field
width, and a small most-common-values (MCV) sketch.  The MCV list is
what lets the cost model price hybrid group-by's head/tail split without
re-scanning anything.

Statistics are attached to the catalog's
:class:`~repro.engine.catalog.TableInfo` (``info.stats``) by
:func:`~repro.engine.catalog.load_table`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.storage.csvcodec import (
    _QUOTE_TRIGGERS,
    FIELD_DELIM,
    RECORD_DELIM,
    format_value,
)
from repro.storage.schema import TableSchema

#: Most-common values kept per column.  Large enough to cover the
#: paper's hybrid group-by sweet spot (Figure 6 pushes 6-8 groups).
DEFAULT_MCV_SIZE = 16

#: Columns with more distinct values than this stop tracking exact
#: frequencies (their MCV list would be meaningless anyway); the
#: distinct count itself stays exact.
_MCV_TRACK_LIMIT = 4096

#: Equi-depth buckets per numeric column.  Enough resolution that a
#: Zipf(1.3) head (fig07's worst skew) lands in its own buckets instead
#: of being linearly smeared across the whole min/max range.
DEFAULT_HISTOGRAM_BUCKETS = 32


@dataclass(frozen=True)
class Histogram:
    """Equi-depth histogram over a column's non-NULL values.

    ``buckets`` are ``(lo, hi, count)`` triples in ascending order with
    inclusive bounds; counts are near-equal by construction, so skewed
    value mass shows up as narrow buckets instead of being averaged away
    the way a single min/max interval is.
    """

    buckets: tuple
    #: Total non-NULL values covered (the sum of bucket counts).
    total: int

    def fraction(self, op: str, value) -> float | None:
        """Fraction of covered values satisfying ``x <op> value``.

        Within a bucket, values are assumed uniform over ``[lo, hi]``;
        integer bounds get the same half-open ``unit`` correction as the
        min/max interpolation, which keeps the estimate *exact* on dense
        integer domains.  Returns ``None`` when ``value`` is not
        comparable to the bucket bounds.
        """
        if not self.total:
            return None
        try:
            if op in ("<", "<="):
                return self._below(value, inclusive=op == "<=")
            if op in (">", ">="):
                return 1.0 - self._below(value, inclusive=op == ">")
        except TypeError:
            return None
        return None

    def _below(self, value, inclusive: bool) -> float:
        covered = 0.0
        for lo, hi, count in self.buckets:
            unit = 1 if isinstance(lo, int) and isinstance(hi, int) else 0
            width = (hi - lo) + unit
            if inclusive:
                numer = (value - lo) + unit
            else:
                numer = value - lo
            if width <= 0:  # single-valued float bucket
                frac = 1.0 if numer > 0 or (inclusive and value >= lo) else 0.0
            else:
                frac = numer / width
            covered += count * min(max(frac, 0.0), 1.0)
        return covered / self.total


def build_histogram(
    non_null: Sequence, num_buckets: int = DEFAULT_HISTOGRAM_BUCKETS
) -> Histogram | None:
    """Equi-depth histogram of ``non_null`` (numeric values only).

    Returns ``None`` for empty or non-numeric input.  Bucket count is
    capped by the number of values so single-value buckets only appear
    when the column is narrower than the requested resolution.
    """
    if not non_null:
        return None
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in non_null):
        return None
    ordered = sorted(non_null)
    n = len(ordered)
    b = max(min(num_buckets, n), 1)
    buckets = []
    for i in range(b):
        start, stop = i * n // b, (i + 1) * n // b
        if start >= stop:
            continue
        chunk = ordered[start:stop]
        buckets.append((chunk[0], chunk[-1], len(chunk)))
    return Histogram(buckets=tuple(buckets), total=n)


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column."""

    name: str
    type: str
    distinct: int
    null_count: int
    min_value: object = None
    max_value: object = None
    #: Mean encoded CSV field width in bytes (quotes included).
    avg_field_bytes: float = 0.0
    #: ``(value, count)`` pairs, most frequent first.  Empty when the
    #: column blew past the tracking limit.
    mcvs: tuple = ()
    #: Equi-depth histogram over the non-NULL values; ``None`` for
    #: non-numeric columns and synthesized stats.
    histogram: Histogram | None = None

    def mcv_fraction(self, row_count: int, top: int) -> float:
        """Fraction of rows covered by the ``top`` most common values."""
        if not row_count or not self.mcvs:
            return 0.0
        return sum(c for _, c in self.mcvs[:top]) / row_count


@dataclass(frozen=True)
class TableStats:
    """Statistics of one loaded table."""

    row_count: int
    #: Mean encoded CSV row width in bytes (delimiters included).
    avg_row_bytes: float
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())

    def projected_row_bytes(self, names: Sequence[str]) -> float:
        """Encoded width of a row projected to ``names`` (with delimiters).

        This is what an S3 Select response row costs on the wire — the
        service always returns CSV — and what separates "return 4 of 20
        columns" from "return everything" in the cost model.
        """
        widths = []
        for name in names:
            stats = self.column(name)
            widths.append(stats.avg_field_bytes if stats is not None else 8.0)
        delimiters = max(len(widths) - 1, 0) * len(FIELD_DELIM) + len(RECORD_DELIM)
        return sum(widths) + delimiters


def collect_table_stats(
    rows: Sequence[tuple],
    schema: TableSchema,
    mcv_size: int = DEFAULT_MCV_SIZE,
) -> TableStats:
    """One exact pass over ``rows`` producing a :class:`TableStats`.

    Runs at load time (the data is in memory anyway); query-time code
    only ever reads the result.
    """
    n = len(rows)
    columns: dict[str, ColumnStats] = {}
    for idx, col in enumerate(schema.columns):
        values = [row[idx] for row in rows]
        non_null = [v for v in values if v is not None]
        null_count = n - len(non_null)
        counter: Counter | None = Counter()
        distinct_set: set = set()
        width_total = 0
        for v in values:
            text = format_value(v)
            width_total += len(text.encode())
            if any(ch in _QUOTE_TRIGGERS for ch in text):
                width_total += 2 + text.count('"')  # quoting overhead
            if v is not None:
                distinct_set.add(v)
                if counter is not None:
                    counter[v] += 1
                    if len(counter) > _MCV_TRACK_LIMIT:
                        counter = None
        columns[col.name.lower()] = ColumnStats(
            name=col.name,
            type=col.type,
            distinct=len(distinct_set),
            null_count=null_count,
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
            avg_field_bytes=width_total / n if n else 0.0,
            mcvs=tuple(counter.most_common(mcv_size)) if counter else (),
            histogram=build_histogram(non_null),
        )
    field_bytes = sum(c.avg_field_bytes for c in columns.values())
    delimiters = (len(schema) - 1) * len(FIELD_DELIM) + len(RECORD_DELIM)
    return TableStats(
        row_count=n,
        avg_row_bytes=(field_bytes + delimiters) if n else 0.0,
        columns=columns,
    )


# ----------------------------------------------------------------------
# zone maps: per-partition min/max/null-count for static pruning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnZone:
    """One column's value envelope within one partition object.

    ``min_value``/``max_value`` are ``None`` iff every value in the
    partition is NULL — together with ``null_count`` that is everything
    static refutation needs.
    """

    min_value: object
    max_value: object
    null_count: int


@dataclass(frozen=True)
class PartitionZoneMap:
    """Zone map of one partition object: row count + per-column zones."""

    row_count: int
    columns: Mapping[str, ColumnZone] = field(default_factory=dict)

    def column(self, name: str) -> ColumnZone | None:
        return self.columns.get(name.lower())


def collect_zone_map(
    rows: Sequence[tuple], schema: TableSchema
) -> PartitionZoneMap:
    """Min/max/null-count per column over one partition's rows.

    Runs inside :func:`~repro.engine.catalog.load_table`'s per-partition
    encoding loop, so the extra pass touches data that is hot anyway.
    """
    columns: dict[str, ColumnZone] = {}
    for idx, col in enumerate(schema.columns):
        non_null = [row[idx] for row in rows if row[idx] is not None]
        columns[col.name.lower()] = ColumnZone(
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
            null_count=len(rows) - len(non_null),
        )
    return PartitionZoneMap(row_count=len(rows), columns=columns)


def synthesize_table_stats(
    schema: TableSchema, num_rows: int, total_bytes: int
) -> TableStats:
    """Fallback statistics for a table registered without a stats pass.

    The true average row width comes from the object sizes; it is
    apportioned across columns by the per-type typical widths so
    projection estimates stay sane.  Distinct counts and min/max are
    unknown and left at worst-case defaults.
    """
    avg_row = total_bytes / num_rows if num_rows else 0.0
    typical = [c.typical_field_bytes() for c in schema.columns]
    scale = (
        (avg_row - len(schema) - 1) / sum(typical)
        if num_rows and sum(typical) > 0
        else 1.0
    )
    scale = max(scale, 0.1)
    columns = {
        c.name.lower(): ColumnStats(
            name=c.name,
            type=c.type,
            distinct=num_rows,
            null_count=0,
            avg_field_bytes=w * scale,
        )
        for c, w in zip(schema.columns, typical)
    }
    return TableStats(row_count=num_rows, avg_row_bytes=avg_row, columns=columns)
