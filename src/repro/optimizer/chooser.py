"""The strategy chooser: rank candidate estimates, run the winner.

``choose_*`` functions return a :class:`Choice` — the ranked
per-candidate :class:`~repro.optimizer.cost.StrategyEstimate` profiles
plus the pick — without touching storage (unless a selectivity probe is
requested, which is metered and reported).  :func:`run_auto` dispatches
on the query object, executes the picked strategy, and attaches the full
choice to ``execution.details["optimizer"]`` so callers can render the
EXPLAIN report next to the measured run.

Objectives: ``"cost"`` minimizes predicted total dollars (the paper's
Figures 1b-9b axis; compute cost folds simulated runtime in, so this is
the balanced default), ``"runtime"`` minimizes predicted simulated
seconds (the Figures 1a-9a axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.context import CloudContext, QueryExecution
from repro.common.errors import PlanError
from repro.engine.catalog import Catalog
from repro.optimizer.cost import CostModel, StrategyEstimate, objective_key
from repro.optimizer.selectivity import probe_selectivity
from repro.strategies import extensions as extension_strategies
from repro.strategies import filter as filter_strategies
from repro.strategies import groupby as groupby_strategies
from repro.strategies import join as join_strategies
from repro.strategies import topk as topk_strategies
from repro.strategies.filter import FilterQuery
from repro.strategies.groupby import GroupByQuery
from repro.strategies.join import JoinQuery
from repro.strategies.topk import TopKQuery

OBJECTIVES = ("cost", "runtime")

#: Strategy name -> executor, for every query family the chooser covers.
STRATEGY_RUNNERS: dict[str, Callable] = {
    "server-side filter": filter_strategies.server_side_filter,
    "s3-side filter": filter_strategies.s3_side_filter,
    "s3-side indexing": filter_strategies.indexed_filter,
    "multirange indexed filter": extension_strategies.multirange_indexed_filter,
    "server-side group-by": groupby_strategies.server_side_group_by,
    "filtered group-by": groupby_strategies.filtered_group_by,
    "s3-side group-by": groupby_strategies.s3_side_group_by,
    "hybrid group-by": groupby_strategies.hybrid_group_by,
    "partial group-by pushdown": extension_strategies.partial_pushdown_group_by,
    "server-side top-k": topk_strategies.server_side_top_k,
    "sampling top-k": topk_strategies.sampling_top_k,
    "baseline join": join_strategies.baseline_join,
    "filtered join": join_strategies.filtered_join,
    "bloom join": join_strategies.bloom_join,
}


@dataclass
class Choice:
    """Outcome of one optimization: ranked candidates plus the pick."""

    query_kind: str
    objective: str
    candidates: list[StrategyEstimate] = field(default_factory=list)
    picked: str = ""
    #: Extra context (probe spend, estimation inputs) for the report.
    notes: dict = field(default_factory=dict)

    @property
    def best(self) -> StrategyEstimate:
        for candidate in self.candidates:
            if candidate.strategy == self.picked:
                return candidate
        raise PlanError(f"no candidate named {self.picked!r}")

    def ranked(self) -> list[StrategyEstimate]:
        key = _objective_key(self.objective)
        return sorted(self.candidates, key=key)

    def explain(self) -> str:
        return explain_choice(self)

    def summary(self) -> dict:
        """Compact dict for ``QueryExecution.details`` / experiment rows."""
        return {
            "picked": self.picked,
            "objective": self.objective,
            "candidates": {
                c.strategy: {
                    "requests": round(c.requests, 3),
                    "bytes_scanned": int(c.bytes_scanned),
                    "bytes_returned": int(c.bytes_returned),
                    "bytes_transferred": int(c.bytes_transferred),
                    "runtime_s": round(c.runtime_seconds, 6),
                    "cost": round(c.total_cost, 9),
                }
                for c in self.candidates
            },
            **self.notes,
        }


#: Kept as the chooser's historical name for the shared ranking key.
_objective_key = objective_key


def _choose(kind: str, candidates: list[StrategyEstimate], objective: str,
            notes: dict | None = None) -> Choice:
    if objective not in OBJECTIVES:
        raise PlanError(f"unknown objective {objective!r}; use {OBJECTIVES}")
    if not candidates:
        raise PlanError(f"no candidate strategies for {kind}")
    best = min(candidates, key=_objective_key(objective))
    return Choice(
        query_kind=kind,
        objective=objective,
        candidates=candidates,
        picked=best.strategy,
        notes=notes or {},
    )


def choose_filter_strategy(
    ctx: CloudContext,
    catalog: Catalog,
    query: FilterQuery,
    objective: str = "cost",
    probe: bool = False,
    probe_fraction: float = 0.02,
    probe_refresh: bool = False,
    include_extensions: bool = False,
) -> Choice:
    """Pick among server-side / S3-side / indexed filtering.

    ``probe=True`` measures selectivity with a metered ScanRange probe
    instead of trusting the statistics estimate.  A selectivity already
    measured this session (earlier probe or executed scan) is reused
    without spending requests — and without re-reading ``probe_fraction``
    — so the note's request count is 0 on warm hits; pass
    ``probe_refresh=True`` to force a fresh metered probe at the
    requested fraction.
    ``include_extensions=True`` adds the multi-range-GET indexed filter
    (Suggestion 1) to the candidate set.
    """
    model = CostModel(ctx, catalog)
    notes = {}
    selectivity = None
    if probe:
        mark = ctx.metrics.mark()
        selectivity = probe_selectivity(
            ctx, catalog.get(query.table), query.predicate, probe_fraction,
            refresh=probe_refresh,
        )
        notes["probe"] = {
            "selectivity": selectivity,
            "requests": len(ctx.metrics.records_since(mark)),
        }
    candidates = model.estimate_filter(
        query, selectivity=selectivity, include_extensions=include_extensions
    )
    return _choose("filter", candidates, objective, notes)


def choose_group_by_strategy(
    ctx: CloudContext,
    catalog: Catalog,
    query: GroupByQuery,
    objective: str = "cost",
    include_hybrid: bool = True,
    include_extensions: bool = False,
) -> Choice:
    """Pick among the paper's four group-by strategies.

    ``include_extensions=True`` adds Suggestion 4's partial group-by
    pushdown to the candidate set (an extension real S3 does not offer,
    so it is opt-in, mirroring the multirange filter).
    """
    model = CostModel(ctx, catalog)
    candidates = model.estimate_group_by(
        query, include_hybrid=include_hybrid, objective=objective,
        include_extensions=include_extensions,
    )
    return _choose("group-by", candidates, objective)


def choose_top_k_strategy(
    ctx: CloudContext,
    catalog: Catalog,
    query: TopKQuery,
    objective: str = "cost",
) -> Choice:
    model = CostModel(ctx, catalog)
    return _choose("top-k", model.estimate_top_k(query), objective)


def choose_join_strategy(
    ctx: CloudContext,
    catalog: Catalog,
    query: JoinQuery,
    objective: str = "cost",
) -> Choice:
    model = CostModel(ctx, catalog)
    return _choose("join", model.estimate_join(query), objective)


def choose_planner_mode(
    ctx: CloudContext,
    catalog: Catalog,
    query,
    objective: str = "cost",
    extra_refs=(),
) -> Choice:
    """Pick the SQL planner's execution mode (``baseline`` / ``optimized``).

    ``query`` is a parsed :class:`repro.sqlparser.ast.Query`; this is the
    hook behind ``PushdownDB.execute(sql, mode="auto")``.  When the
    decorrelation pass rewrote the query, ``extra_refs`` carries the
    core-side columns its sub-joins read so projection estimates match
    the plan that will actually run.

    For multi-table queries the join-order search's per-candidate table
    (each considered order with predicted rows/runtime/cost) is lifted
    into the choice's notes so EXPLAIN can render it.
    """
    model = CostModel(ctx, catalog)
    candidates = model.estimate_planner_modes(query, objective, extra_refs)
    notes = {}
    for candidate in candidates:
        if "join_orders" in candidate.notes:
            notes = {
                key: candidate.notes[key]
                for key in ("join_order", "join_order_list", "join_tree",
                            "join_order_method", "join_orders")
            }
    return _choose("sql", candidates, objective, notes)


_CHOOSERS = {
    FilterQuery: choose_filter_strategy,
    GroupByQuery: choose_group_by_strategy,
    TopKQuery: choose_top_k_strategy,
    JoinQuery: choose_join_strategy,
}


def choose(
    ctx: CloudContext, catalog: Catalog, query, objective: str = "cost", **kwargs
) -> Choice:
    """Dispatch on the query object's family."""
    chooser = _CHOOSERS.get(type(query))
    if chooser is None:
        raise PlanError(
            f"cannot optimize query of type {type(query).__name__};"
            f" supported: {[t.__name__ for t in _CHOOSERS]}"
        )
    return chooser(ctx, catalog, query, objective=objective, **kwargs)


def run_auto(
    ctx: CloudContext,
    catalog: Catalog,
    query,
    objective: str = "cost",
    **kwargs,
) -> QueryExecution:
    """Choose the cheapest strategy for ``query``, run it, report both.

    The measured execution's ``details["optimizer"]`` carries the full
    per-candidate prediction table (:meth:`Choice.summary`).
    """
    choice = choose(ctx, catalog, query, objective=objective, **kwargs)
    runner = STRATEGY_RUNNERS[choice.picked]
    runner_kwargs = {}
    if choice.picked == "hybrid group-by" and "s3_groups" in choice.best.notes:
        # The estimator swept the split point; run the winning split.
        runner_kwargs["s3_groups"] = choice.best.notes["s3_groups"]
    execution = runner(ctx, catalog, query, **runner_kwargs)
    execution.details["optimizer"] = choice.summary()
    return execution


def render_choice_summary(summary: dict, query_kind: str = "") -> str:
    """EXPLAIN-style report from a :meth:`Choice.summary` dict.

    Works off the plain dict so the CLI can render the report straight
    from ``execution.details["optimizer"]``.
    """
    from repro.common.units import human_bytes, human_dollars, human_seconds

    objective = summary.get("objective", "cost")
    picked = summary.get("picked", "")
    kind = f"{query_kind} query, " if query_kind else ""
    lines = [f"optimizer: {kind}objective={objective}, picked {picked!r}"]
    lines.append(
        f"  {'':2} {'strategy':<22} {'requests':>10} {'scanned':>10}"
        f" {'returned':>10} {'moved':>10} {'runtime':>10} {'cost':>12}"
    )
    candidates = summary.get("candidates", {})
    sort_key = (
        (lambda kv: (kv[1]["runtime_s"], kv[1]["cost"]))
        if objective == "runtime"
        else (lambda kv: (kv[1]["cost"], kv[1]["runtime_s"]))
    )
    for name, est in sorted(candidates.items(), key=sort_key):
        marker = "->" if name == picked else "  "
        lines.append(
            f"  {marker} {name:<22} {est['requests']:>10.1f}"
            f" {human_bytes(int(est['bytes_scanned'])):>10}"
            f" {human_bytes(int(est['bytes_returned'])):>10}"
            f" {human_bytes(int(est['bytes_transferred'])):>10}"
            f" {human_seconds(est['runtime_s']):>10}"
            f" {human_dollars(est['cost']):>12}"
        )
    if summary.get("join_orders"):
        method = summary.get("join_order_method", "dp")
        lines.append(
            f"  join-order search ({method}):"
            f" picked {summary.get('join_order', '')!r}"
        )
        lines.append(
            f"  {'':2} {'order':<40} {'est rows':>12} {'runtime':>10}"
            f" {'cost':>12}"
        )
        for row in summary["join_orders"]:
            marker = "->" if row.get("picked") else "  "
            lines.append(
                f"  {marker} {row['order']:<40} {row['est_rows']:>12.1f}"
                f" {human_seconds(row['runtime_s']):>10}"
                f" {human_dollars(row['cost']):>12}"
            )
    if summary.get("probe"):
        probe = summary["probe"]
        lines.append(
            f"  note: selectivity probed = {probe['selectivity']:.6f}"
            f" ({probe['requests']} metered request(s))"
        )
    return "\n".join(lines)


def explain_choice(choice: Choice) -> str:
    """EXPLAIN-style report: one line per candidate, the pick marked."""
    return render_choice_summary(choice.summary(), choice.query_kind)
