"""Per-strategy cost prediction built on the execution layer's own math.

Every estimator mirrors what its strategy actually meters: it predicts
the requests, scanned/returned/transferred bytes, S3-side term
evaluations, query-node ingest and local CPU of each phase, assembles
them into the same :class:`~repro.cloud.metrics.Phase` objects the
executor produces, and prices them through the *same*
:class:`~repro.cloud.perf.PerfModel` and
:class:`~repro.cloud.pricing.Pricing` the context bills with.  Nothing
about timing or pricing is duplicated here — only the work counts are
predicted instead of measured, so a calibrated context (paper-scale
rates, scaled pricing, weighted ranged GETs) automatically calibrates
the predictions too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bloom.filter import optimal_num_bits, optimal_num_hashes
from repro.cloud.context import CloudContext
from repro.cloud.metrics import Phase, RequestKind, RequestRecord, StreamWork
from repro.cloud.perf import SERVER_CPU_PER_ROW
from repro.cloud.pricing import CostBreakdown, cost_of_query
from repro.engine.catalog import Catalog, TableInfo
from repro.optimizer.feedback import estimate_selectivity_with_feedback
from repro.optimizer.stats import TableStats
from repro.s3select.validator import EXPRESSION_LIMIT_BYTES
from repro.sqlparser import ast
from repro.strategies.filter import REQUEST_WORKERS, FilterQuery
from repro.strategies.groupby import (
    _SQL_BUDGET_BYTES,
    DEFAULT_S3_GROUPS,
    DEFAULT_SAMPLE_FRACTION,
    GroupByQuery,
    _agg_column_sql,
    _group_match_sql,
)
from repro.strategies.join import DEFAULT_FPR, JoinQuery
from repro.strategies.topk import (
    TopKQuery,
    optimal_sample_size,
    order_bytes_fraction,
)


#: Candidate hybrid group-by split points (head groups pushed to S3);
#: the estimator prices each and keeps the cheapest (ROADMAP "optimizer
#: coverage": the split used to be priced at the default only).
HYBRID_SPLIT_CANDIDATES = (4, 6, 8, 12, 16)


@dataclass(frozen=True)
class StrategyEstimate:
    """Predicted execution profile of one candidate strategy."""

    strategy: str
    requests: float
    bytes_scanned: float
    bytes_returned: float
    bytes_transferred: float
    runtime_seconds: float
    cost: CostBreakdown
    notes: dict = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.cost.total


def objective_key(objective: str):
    """Sort key ranking estimates under an optimization objective.

    Shared by the strategy chooser and the join-order search so both
    rank (and tie-break) candidates identically.
    """
    if objective == "runtime":
        return lambda e: (e.runtime_seconds, e.total_cost)
    return lambda e: (e.total_cost, e.runtime_seconds)


def _conjuncts(expr: ast.Expr | None) -> int:
    """Top-level WHERE conjuncts — the validator's term unit."""
    if expr is None:
        return 0
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return 1


def _phase(
    name: str,
    streams: int,
    *,
    scan_bytes: float = 0.0,
    returned_bytes: float = 0.0,
    get_bytes: float = 0.0,
    term_evals: float = 0.0,
    requests: float | None = None,
    cpu_seconds: float = 0.0,
    records: float = 0.0,
    fields: float = 0.0,
) -> Phase:
    """A predicted phase: totals spread evenly over ``streams`` lanes."""
    n = max(int(streams), 1)
    if requests is None:
        requests = float(n)
    work = [
        StreamWork(
            requests=requests / n,
            select_scan_bytes=scan_bytes / n,
            select_returned_bytes=returned_bytes / n,
            get_bytes=get_bytes / n,
            term_evals=term_evals / n,
        )
        for _ in range(n)
    ]
    return Phase(
        name=name,
        streams=work,
        server_cpu_seconds=cpu_seconds,
        server_records=records,
        server_fields=fields,
    )


class CostModel:
    """Predicts :class:`StrategyEstimate` profiles for candidate plans."""

    def __init__(self, ctx: CloudContext, catalog: Catalog):
        self.ctx = ctx
        self.catalog = catalog

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _finalize(
        self, strategy: str, phases: list[Phase], notes: dict | None = None
    ) -> StrategyEstimate:
        runtime = self.ctx.perf.runtime(phases)
        requests = sum(p.requests for p in phases)
        scanned = sum(p.select_scan_bytes for p in phases)
        returned = sum(p.select_returned_bytes for p in phases)
        transferred = sum(p.get_bytes for p in phases)
        synthetic = RequestRecord(
            kind=RequestKind.SELECT,
            bucket="",
            key="",
            bytes_scanned=int(scanned),
            bytes_returned=int(returned),
            bytes_transferred=int(transferred),
            weight=requests,
        )
        cost = cost_of_query([synthetic], runtime, self.ctx.pricing)
        return StrategyEstimate(
            strategy=strategy,
            requests=requests,
            bytes_scanned=scanned,
            bytes_returned=returned,
            bytes_transferred=transferred,
            runtime_seconds=runtime,
            cost=cost,
            notes=notes or {},
        )

    def price_phases(
        self, strategy: str, phases: list[Phase], notes: dict | None = None
    ) -> StrategyEstimate:
        """Price externally assembled phases (the join-order search's hook).

        Runs the same runtime + dollar pricing every built-in estimator
        uses, so composed plans inherit the context's calibration.
        """
        return self._finalize(strategy, phases, notes)

    def _table(self, name: str) -> tuple[TableInfo, TableStats]:
        info = self.catalog.get(name)
        return info, info.stats_or_default()

    def _selectivity(
        self, table: str, predicate: ast.Expr | None, stats: TableStats
    ) -> float:
        """Session-feedback-first selectivity (System-R when cold)."""
        return estimate_selectivity_with_feedback(
            getattr(self.ctx, "feedback", None), table, predicate, stats
        )

    @staticmethod
    def _output_cpu(n_rows: float, output_items) -> float:
        """Local cost of a final select list (aggregation or projection)."""
        if not output_items:
            return 0.0
        has_aggregate = any(
            not isinstance(i.expr, ast.Star) and ast.contains_aggregate(i.expr)
            for i in output_items
        )
        rate = (
            SERVER_CPU_PER_ROW["aggregate"]
            if has_aggregate
            else SERVER_CPU_PER_ROW["filter"]
        )
        return n_rows * len(output_items) * rate

    # ------------------------------------------------------------------
    # filters (paper Section IV, Figure 1)
    # ------------------------------------------------------------------
    def estimate_filter(
        self,
        query: FilterQuery,
        selectivity: float | None = None,
        include_extensions: bool = False,
    ) -> list[StrategyEstimate]:
        """Candidates: server-side filter, S3-side filter, S3-side indexing.

        ``include_extensions=True`` adds the multi-range-GET indexed
        filter (paper Suggestion 1) — an extension real S3 does not
        offer, so it is opt-in rather than a default candidate.
        """
        table, stats = self._table(query.table)
        if selectivity is None:
            selectivity = self._selectivity(query.table, query.predicate, stats)
        n = table.num_rows
        matched = selectivity * n
        columns = (
            query.projection if query.projection is not None
            else list(table.schema.names)
        )
        out_width = stats.projected_row_bytes(columns)
        notes = {"selectivity": selectivity, "matched_rows": matched}
        estimates = []

        # server-side: GET everything, filter (and project) locally.
        cpu = n * SERVER_CPU_PER_ROW["filter"]
        if query.projection is not None:
            cpu += matched * len(columns) * SERVER_CPU_PER_ROW["filter"]
        cpu += self._output_cpu(matched, query.output)
        estimates.append(self._finalize(
            "server-side filter",
            [_phase(
                "load+filter", table.partitions,
                get_bytes=float(table.total_bytes),
                cpu_seconds=cpu,
                records=n, fields=n * len(table.schema),
            )],
            notes,
        ))

        # s3-side: push selection + projection into one scan.
        estimates.append(self._finalize(
            "s3-side filter",
            [_phase(
                "s3-filter", table.partitions,
                scan_bytes=float(table.total_bytes),
                returned_bytes=matched * out_width,
                term_evals=n * _conjuncts(query.predicate),
                cpu_seconds=self._output_cpu(matched, query.output),
                records=matched, fields=matched * len(columns),
            )],
            notes,
        ))

        # indexing: only when a single-column predicate has an index.
        referenced = ast.referenced_columns(query.predicate)
        if len(referenced) == 1 and next(iter(referenced)).lower() in table.indexes:
            index = table.indexes[next(iter(referenced)).lower()]
            index_row = index.total_bytes / max(n, 1)
            phase1 = _phase(
                "index-lookup", len(index.keys),
                scan_bytes=float(index.total_bytes),
                returned_bytes=matched * (index_row * 0.8),  # offsets only
                term_evals=n * _conjuncts(query.predicate),
                records=matched, fields=matched * 2,
            )
            cpu = self._output_cpu(matched, query.output)
            if query.projection is not None:
                cpu += matched * len(columns) * SERVER_CPU_PER_ROW["filter"]
            phase2 = _phase(
                "record-fetch", REQUEST_WORKERS,
                get_bytes=matched * stats.avg_row_bytes,
                requests=matched * self.ctx.client.range_request_weight,
                cpu_seconds=cpu,
                records=matched, fields=matched * len(table.schema),
            )
            estimates.append(
                self._finalize("s3-side indexing", [phase1, phase2], notes)
            )
            if include_extensions:
                from repro.strategies.extensions import MAX_RANGES_PER_REQUEST

                # Suggestion 1: the same index lookup, but phase 2
                # batches matched extents into multi-range GETs, so the
                # per-record request flood collapses to ~one request per
                # partition per MAX_RANGES batch.
                row_weight = self.ctx.client.range_request_weight
                requests = max(
                    float(table.partitions),
                    matched * row_weight / MAX_RANGES_PER_REQUEST,
                )
                # Same local work as the indexing candidate's phase 2
                # (`cpu` above); only the fetch requests change.
                fetch = _phase(
                    "multirange-fetch", table.partitions,
                    get_bytes=matched * stats.avg_row_bytes,
                    requests=requests,
                    cpu_seconds=cpu,
                    records=matched, fields=matched * len(table.schema),
                )
                estimates.append(self._finalize(
                    "multirange indexed filter", [phase1, fetch], notes
                ))
        return estimates

    # ------------------------------------------------------------------
    # group-by (paper Section VI, Figures 5-7)
    # ------------------------------------------------------------------
    def _groupby_shape(self, query: GroupByQuery, stats: TableStats):
        table = self.catalog.get(query.table)
        sel = self._selectivity(query.table, query.predicate, stats)
        agg_columns: list[str] = []
        for agg in query.aggregates:
            agg_columns.extend(
                c for c in table.schema.names
                if c.lower() in {r.lower() for r in agg.referenced_columns()}
            )
        needed = list(dict.fromkeys([*query.group_columns, *agg_columns]))
        groups = 1
        for col in query.group_columns:
            col_stats = stats.column(col)
            groups *= max(col_stats.distinct, 1) if col_stats else 32
        groups = min(groups, max(stats.row_count, 1))
        accumulators = sum(
            2 if a.func.upper() == "AVG" else 1 for a in query.aggregates
        )
        return table, sel, needed, groups, accumulators

    def _case_chunks(self, query: GroupByQuery, groups: int, stats: TableStats):
        """(num chunk-queries, case columns) of the pushed aggregation."""
        group_cols = query.group_columns
        rep_values = tuple(
            (stats.column(c).max_value if stats.column(c) else 999)
            for c in group_cols
        )
        match = _group_match_sql(list(group_cols), rep_values)
        per_group_bytes = 0
        case_cols_per_group = 0
        for agg in query.aggregates:
            cols = _agg_column_sql(agg, match)
            case_cols_per_group += len(cols)
            per_group_bytes += sum(len(c.encode()) + 2 for c in cols)
        total_bytes = groups * per_group_bytes
        chunks = max(1, math.ceil(total_bytes / _SQL_BUDGET_BYTES))
        return chunks, groups * case_cols_per_group

    def estimate_group_by(
        self,
        query: GroupByQuery,
        s3_groups: int = DEFAULT_S3_GROUPS,
        sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
        include_hybrid: bool = True,
        objective: str = "cost",
        include_extensions: bool = False,
    ) -> list[StrategyEstimate]:
        """Candidates: server-side, filtered, S3-side, hybrid group-by.

        ``include_extensions=True`` adds the Suggestion-4 partial
        group-by pushdown — a capability real S3 does not offer, so it
        is opt-in rather than a default candidate.
        """
        _, stats = self._table(query.table)
        table, sel, needed, groups, accumulators = self._groupby_shape(query, stats)
        n = table.num_rows
        kept = sel * n
        agg_cpu_rate = SERVER_CPU_PER_ROW["aggregate"]
        notes = {"groups": groups, "selectivity": sel}
        estimates = []

        # server-side: GET everything, aggregate locally.
        cpu = kept * accumulators * agg_cpu_rate
        if query.predicate is not None:
            cpu += n * SERVER_CPU_PER_ROW["filter"]
        estimates.append(self._finalize(
            "server-side group-by",
            [_phase(
                "load+groupby", table.partitions,
                get_bytes=float(table.total_bytes),
                cpu_seconds=cpu,
                records=n, fields=n * len(table.schema),
            )],
            notes,
        ))

        # filtered: project group + aggregate columns, aggregate locally.
        estimates.append(self._finalize(
            "filtered group-by",
            [_phase(
                "select+groupby", table.partitions,
                scan_bytes=float(table.total_bytes),
                returned_bytes=kept * stats.projected_row_bytes(needed),
                term_evals=n * _conjuncts(query.predicate),
                cpu_seconds=kept * accumulators * agg_cpu_rate,
                records=kept, fields=kept * len(needed),
            )],
            notes,
        ))

        # s3-side: distinct groups locally, then CASE-encoded aggregation.
        chunks, case_columns = self._case_chunks(query, groups, stats)
        phase1 = _phase(
            "collect-groups", table.partitions,
            scan_bytes=float(table.total_bytes),
            returned_bytes=kept * stats.projected_row_bytes(query.group_columns),
            term_evals=n * _conjuncts(query.predicate),
            cpu_seconds=kept * agg_cpu_rate,
            records=kept, fields=kept * len(query.group_columns),
        )
        # Every chunk query re-scans all rows: its own CASE columns plus
        # the WHERE conjuncts are evaluated per scanned row per chunk.
        phase2 = _phase(
            "s3-aggregate", table.partitions,
            scan_bytes=float(table.total_bytes) * chunks,
            returned_bytes=case_columns * table.partitions * 12.0,
            term_evals=n * case_columns
            + n * chunks * _conjuncts(query.predicate),
            requests=float(table.partitions * chunks),
        )
        estimates.append(self._finalize(
            "s3-side group-by", [phase1, phase2],
            {**notes, "case_columns": case_columns, "chunks": chunks},
        ))

        if include_extensions:
            # Suggestion 4: a real GROUP BY pushed to storage — one scan
            # per partition returning per-group partial aggregates,
            # merged locally.  Per-row S3 work is one term per pushed
            # accumulator (AVG decomposes into SUM + COUNT), independent
            # of the group count — the whole point of the suggestion.
            per_partition = kept / max(table.partitions, 1)
            seen = (
                groups * (1.0 - (1.0 - 1.0 / groups) ** per_partition)
                if groups > 0 else 0.0
            )
            partial_rows = table.partitions * max(
                min(seen, per_partition), 0.0
            )
            pushed_width = (
                stats.projected_row_bytes(query.group_columns)
                + accumulators * 12.0
            )
            estimates.append(self._finalize(
                "partial group-by pushdown",
                [_phase(
                    "partial-groupby", table.partitions,
                    scan_bytes=float(table.total_bytes),
                    returned_bytes=partial_rows * pushed_width,
                    term_evals=n * (accumulators + _conjuncts(query.predicate)),
                    records=partial_rows,
                    fields=partial_rows
                    * (len(query.group_columns) + accumulators),
                )],
                {**notes, "partial_rows": partial_rows},
            ))

        if not (include_hybrid and len(query.group_columns) == 1):
            return estimates

        # hybrid: sample for the head groups, push those, pull the tail.
        # The split point (how many head groups go to S3) is priced as a
        # swept parameter: every candidate split is estimated and the
        # best under the caller's objective becomes the hybrid
        # candidate, carrying its split in ``notes["s3_groups"]`` so
        # `run_auto` can execute it.
        splits = list(dict.fromkeys(
            [*HYBRID_SPLIT_CANDIDATES, s3_groups]
        ))
        swept = [
            self._estimate_hybrid(
                query, stats, table, sel, needed, groups, accumulators,
                notes, split, sample_fraction,
            )
            for split in splits
        ]
        best = min(swept, key=objective_key(objective))
        best.notes["split_candidates"] = {
            e.notes["s3_groups"]: round(e.total_cost, 9) for e in swept
        }
        estimates.append(best)
        return estimates

    def _estimate_hybrid(
        self,
        query: GroupByQuery,
        stats: TableStats,
        table: TableInfo,
        sel: float,
        needed: list[str],
        groups: int,
        accumulators: int,
        notes: dict,
        s3_groups: int,
        sample_fraction: float,
    ) -> StrategyEstimate:
        """Price hybrid group-by for one head-group split point."""
        n = table.num_rows
        kept = sel * n
        agg_cpu_rate = SERVER_CPU_PER_ROW["aggregate"]
        group_stats = stats.column(query.group_columns[0])
        head_groups = min(s3_groups, groups)
        head_fraction = (
            group_stats.mcv_fraction(stats.row_count, head_groups)
            if group_stats is not None
            else head_groups / max(groups, 1)
        )
        if head_fraction <= 0.0:
            head_fraction = head_groups / max(groups, 1)
        sampled = n * sample_fraction
        tail_rows = kept * (1.0 - head_fraction)
        h_chunks, h_case_columns = self._case_chunks(
            query, head_groups, stats
        )
        sample_phase = _phase(
            "sample-groups", table.partitions,
            scan_bytes=float(table.total_bytes) * sample_fraction,
            returned_bytes=sampled * sel
            * stats.projected_row_bytes(query.group_columns),
            term_evals=sampled * _conjuncts(query.predicate),
            cpu_seconds=sampled * sel * agg_cpu_rate,
            records=sampled * sel, fields=sampled * sel,
        )
        q1_scan = float(table.total_bytes) * h_chunks
        q2_terms = n * (_conjuncts(query.predicate) + 1)
        split_phase = _phase(
            "s3-agg+tail", 2 * table.partitions,
            scan_bytes=q1_scan + float(table.total_bytes),
            returned_bytes=h_case_columns * table.partitions * 12.0
            + tail_rows * stats.projected_row_bytes(needed),
            term_evals=n * h_case_columns + q2_terms,
            requests=float(table.partitions * (h_chunks + 1)),
            cpu_seconds=tail_rows * accumulators * agg_cpu_rate,
            records=tail_rows, fields=tail_rows * len(needed),
        )
        return self._finalize(
            "hybrid group-by", [sample_phase, split_phase],
            {**notes, "head_groups": head_groups,
             "head_fraction": head_fraction, "s3_groups": s3_groups},
        )

    # ------------------------------------------------------------------
    # top-K (paper Section VII, Figures 8-9)
    # ------------------------------------------------------------------
    def estimate_top_k(
        self,
        query: TopKQuery,
        sample_size: int | None = None,
        alpha: float | None = None,
    ) -> list[StrategyEstimate]:
        """Candidates: server-side top-K, sampling-based top-K."""
        table, stats = self._table(query.table)
        n = table.num_rows
        k = query.k
        heap_rate = SERVER_CPU_PER_ROW["heap"]
        log_k = max(1.0, math.log2(max(k, 2)))
        estimates = [self._finalize(
            "server-side top-k",
            [_phase(
                "load+topk", table.partitions,
                get_bytes=float(table.total_bytes),
                cpu_seconds=n * log_k * heap_rate,
                records=n, fields=n * len(table.schema),
            )],
            {"k": k},
        )]
        if k > n:
            return estimates

        if alpha is None:
            alpha = order_bytes_fraction(table, query.order_column)
        if sample_size is None:
            sample_size = optimal_sample_size(k, n, alpha)
        sample_size = max(min(sample_size, n), min(k, n))
        fraction = min(1.0, sample_size / n) if n else 1.0
        # The threshold is the K-th order statistic of the sample, so the
        # expected pass fraction of phase 2 is K/S (±sampling noise).
        pass_rows = min(float(n), n * k / max(sample_size, 1))
        sample_cpu = sample_size * math.log2(max(sample_size, 2)) * 6e-9
        phase1 = _phase(
            "sample", table.partitions,
            scan_bytes=float(table.total_bytes) * fraction,
            returned_bytes=sample_size
            * stats.projected_row_bytes([query.order_column]),
            cpu_seconds=sample_cpu,
            records=sample_size, fields=sample_size,
        )
        phase2 = _phase(
            "scan", table.partitions,
            scan_bytes=float(table.total_bytes),
            returned_bytes=pass_rows * stats.avg_row_bytes,
            term_evals=float(n),
            cpu_seconds=pass_rows * log_k * heap_rate,
            records=pass_rows, fields=pass_rows * len(table.schema),
        )
        estimates.append(self._finalize(
            "sampling top-k", [phase1, phase2],
            {"k": k, "sample_size": sample_size, "expected_pass": pass_rows},
        ))
        return estimates

    # ------------------------------------------------------------------
    # planner modes (SQL front door): baseline vs optimized
    # ------------------------------------------------------------------
    def _tail_cpu(self, query: ast.Query, rows: float) -> float:
        """Local-pipeline CPU of the planner's post-scan tail."""
        cpu = 0.0
        agg_items = [
            i for i in query.select_items
            if not isinstance(i.expr, ast.Star) and ast.contains_aggregate(i.expr)
        ]
        if query.group_by or agg_items:
            cpu += rows * max(len(agg_items), 1) * SERVER_CPU_PER_ROW["aggregate"]
        elif not all(isinstance(i.expr, ast.Star) for i in query.select_items):
            cpu += rows * len(query.select_items) * SERVER_CPU_PER_ROW["filter"]
        if query.order_by:
            if query.limit is not None:
                log_k = max(1.0, math.log2(max(query.limit, 2)))
                cpu += rows * log_k * SERVER_CPU_PER_ROW["heap"]
            elif rows > 1:
                cpu += (
                    rows * math.log2(rows) * len(query.order_by)
                    * SERVER_CPU_PER_ROW["sort_per_cmp"]
                )
        return cpu

    def estimate_planner_modes(
        self, query: ast.Query, objective: str = "cost", extra_refs=()
    ) -> list[StrategyEstimate]:
        """Predict the planner's ``baseline`` vs ``optimized`` execution.

        ``extra_refs`` are columns the decorrelation pass reads beyond
        the query text (sub-join probe keys, ON-residual references);
        they widen the projected scans exactly as they do at execution,
        so a rewritten core whose select list only names columns of a
        decorrelated leg still prices a valid projection.

        Mirrors :mod:`repro.planner.planner`: baseline loads whole tables
        with GETs and runs the local pipeline; optimized pushes
        selection/projection (or the entire additive aggregate) into S3
        Select, with a Bloom filter on join probes.  LIMIT
        early-termination shrinks measured ingest below these
        predictions, never the billed side, so the ranking stands.
        """
        from repro.planner import planner as planner_mod

        if len(query.from_tables) > 2 or (
            query.join_table is not None
            and not planner_mod._has_equi_join(self.catalog, query)
        ):
            # N-way chains and 2-table cross products share the
            # join-tree planner.
            return self._estimate_planner_multijoin(query, objective)
        if query.join_table is not None:
            return self._estimate_planner_join(query, extra_refs)
        table, stats = self._table(query.table)
        n = table.num_rows
        sel = self._selectivity(query.table, query.where, stats)
        kept = sel * n
        estimates = [self._finalize(
            "baseline",
            [_phase(
                "scan", table.partitions,
                get_bytes=float(table.total_bytes),
                cpu_seconds=n * SERVER_CPU_PER_ROW["filter"]
                * (query.where is not None)
                + self._tail_cpu(query, kept),
                records=kept, fields=kept * len(table.schema),
            )],
            {"selectivity": sel},
        )]

        # Zone-map pruning shrinks the optimized candidates' request
        # streams and scanned bytes — the chooser must see those savings
        # or it keeps ranking as if every partition were requested.
        streams, scan_bytes, row_frac = self._pruned_profile(table, query.where)
        pruned = table.partitions - streams
        # A warm semantic cache answers the pushed candidate for free:
        # the chooser must see a zero-request phase or it keeps picking
        # whole-table baselines over replays.
        cache = getattr(self.ctx, "result_cache", None)

        if planner_mod._fully_pushable(query):
            notes = {"selectivity": sel, "pushed": "aggregate"}
            if cache is not None and cache.peek_aggregate(
                table.name, query.where,
                [item.expr.to_sql() for item in query.select_items],
            ) is not None:
                notes["cache"] = "hit"
                estimates.append(self._finalize(
                    "optimized",
                    [_phase("pushed-aggregate", 1, requests=0.0)],
                    notes,
                ))
                return estimates
            terms = n * row_frac * (
                len(query.select_items) + _conjuncts(query.where)
            )
            if pruned:
                notes["partitions_pruned"] = pruned
            estimates.append(self._finalize(
                "optimized",
                [_phase(
                    "pushed-aggregate", streams,
                    scan_bytes=scan_bytes,
                    returned_bytes=streams
                    * len(query.select_items) * 12.0,
                    term_evals=terms,
                )],
                notes,
            ))
            return estimates

        needed = planner_mod._needed_columns(query, table, extra=extra_refs)
        notes = {"selectivity": sel, "pushed": "select"}
        if cache is not None:
            status = cache.peek_scan(table.name, query.where, needed)
            if status is not None:
                notes["cache"] = status
                estimates.append(self._finalize(
                    "optimized",
                    [_phase(
                        "scan", 1, requests=0.0,
                        cpu_seconds=self._tail_cpu(query, kept),
                    )],
                    notes,
                ))
                return estimates
        if pruned:
            notes["partitions_pruned"] = pruned
        estimates.append(self._finalize(
            "optimized",
            [_phase(
                "scan", streams,
                scan_bytes=scan_bytes,
                returned_bytes=kept * stats.projected_row_bytes(needed),
                term_evals=n * row_frac * _conjuncts(query.where),
                cpu_seconds=self._tail_cpu(query, kept),
                records=kept, fields=kept * len(needed),
            )],
            notes,
        ))
        return estimates

    def _pruned_profile(
        self, table, predicate
    ) -> tuple[int, float, float]:
        """(streams, scanned bytes, scanned-row fraction) a pushdown scan
        of ``table`` pays after zone-map pruning of ``predicate``."""
        from repro.optimizer.pruning import keep_partitions

        keep = None
        if getattr(self.ctx, "prune_partitions", True):
            keep = keep_partitions(table, predicate)
        if keep is None:
            return table.partitions, float(table.total_bytes), 1.0
        sizes = table.partition_bytes
        if len(sizes) == table.partitions:
            scan_bytes = float(sum(sizes[i] for i in keep))
        else:
            scan_bytes = (
                float(table.total_bytes) * len(keep)
                / max(table.partitions, 1)
            )
        counts = table.partition_rows
        if len(counts) == table.partitions and table.num_rows:
            row_frac = sum(counts[i] for i in keep) / table.num_rows
        else:
            row_frac = len(keep) / max(table.partitions, 1)
        return len(keep), scan_bytes, row_frac

    def _estimate_planner_join(
        self, query: ast.Query, extra_refs=()
    ) -> list[StrategyEstimate]:
        from repro.planner import planner as planner_mod

        plan, _ = planner_mod._build_join_plan(self.catalog, query)
        build_cols = planner_mod._join_needed_columns(
            query, plan.build, plan.build_key, plan.residual, extra=extra_refs
        )
        probe_cols = planner_mod._join_needed_columns(
            query, plan.probe, plan.probe_key, plan.residual, extra=extra_refs
        )
        join_query = JoinQuery(
            build_table=plan.build.name,
            probe_table=plan.probe.name,
            build_key=plan.build_key,
            probe_key=plan.probe_key,
            build_predicate=plan.build_pred,
            probe_predicate=plan.probe_pred,
            build_projection=build_cols,
            probe_projection=probe_cols,
        )
        by_name = {e.strategy: e for e in self.estimate_join(join_query)}
        baseline = by_name["baseline join"]
        use_bloom = (
            plan.build.schema.column(plan.build_key).type == "int"
            and "bloom join" in by_name
        )
        optimized = by_name["bloom join" if use_bloom else "filtered join"]
        # Both planner modes run the identical local tail over the join
        # output, so the tail CPU lands on both candidates — and the
        # dollar cost is repriced from the new runtime so the two
        # objectives keep ranking from consistent profiles.
        out_rows = optimized.notes.get("matched_probe_rows", 0.0)
        tail = self._tail_cpu(query, out_rows) * self.ctx.perf.server_cpu_factor
        return [
            self._with_added_runtime(baseline, "baseline", tail, "baseline join"),
            self._with_added_runtime(
                optimized, "optimized", tail, optimized.strategy
            ),
        ]

    def _estimate_planner_multijoin(
        self, query: ast.Query, objective: str = "cost"
    ) -> list[StrategyEstimate]:
        """Baseline vs optimized for an N-way (or cross-product) query.

        Runs the join-tree search once (under the caller's objective);
        both planner modes execute the picked tree, so the candidates
        differ only in how each table reaches the query node.  The
        search's per-candidate estimate table rides along in the
        optimized candidate's notes for the EXPLAIN report.
        """
        from repro.optimizer.joinorder import plan_join_order
        from repro.planner.physical import join_tree_label

        decision = plan_join_order(self.ctx, self.catalog, query, objective)
        out_rows = float(decision.estimate.notes.get("est_rows", 0.0))
        tail = self._tail_cpu(query, out_rows) * self.ctx.perf.server_cpu_factor
        label = join_tree_label(decision.tree)
        join_orders = {
            "join_order": " -> ".join(decision.order),
            "join_order_list": list(decision.order),
            #: Structured form of the pick — the planner's data contract
            #: (the display strings above are for EXPLAIN only; the
            #: serialized tree can express bushy and cross shapes the
            #: left-deep order list cannot).
            "join_tree": decision.shape,
            "join_order_method": decision.method,
            "join_orders": decision.candidate_table(),
        }
        baseline = self._with_added_runtime(
            decision.baseline, "baseline", tail, "baseline multi-join"
        )
        optimized = self._with_added_runtime(
            decision.estimate, "optimized", tail, f"multi-join {label}"
        )
        optimized.notes.update(join_orders)
        return [baseline, optimized]

    def _with_added_runtime(
        self, estimate: StrategyEstimate, name: str, extra_seconds: float,
        plan: str,
    ) -> StrategyEstimate:
        runtime = estimate.runtime_seconds + extra_seconds
        synthetic = RequestRecord(
            kind=RequestKind.SELECT,
            bucket="",
            key="",
            bytes_scanned=int(estimate.bytes_scanned),
            bytes_returned=int(estimate.bytes_returned),
            bytes_transferred=int(estimate.bytes_transferred),
            weight=estimate.requests,
        )
        return StrategyEstimate(
            strategy=name,
            requests=estimate.requests,
            bytes_scanned=estimate.bytes_scanned,
            bytes_returned=estimate.bytes_returned,
            bytes_transferred=estimate.bytes_transferred,
            runtime_seconds=runtime,
            cost=cost_of_query([synthetic], runtime, self.ctx.pricing),
            notes={**estimate.notes, "plan": plan},
        )

    # ------------------------------------------------------------------
    # joins (paper Section V, Figures 2-4)
    # ------------------------------------------------------------------
    def _side(self, name: str, projection, predicate):
        info, stats = self._table(name)
        sel = self._selectivity(name, predicate, stats)
        columns = projection if projection is not None else list(info.schema.names)
        return info, stats, sel, columns

    def estimate_join(
        self, query: JoinQuery, fpr: float = DEFAULT_FPR
    ) -> list[StrategyEstimate]:
        """Candidates: baseline join, filtered join, Bloom join."""
        build, b_stats, b_sel, b_cols = self._side(
            query.build_table, query.build_projection, query.build_predicate
        )
        probe, p_stats, p_sel, p_cols = self._side(
            query.probe_table, query.probe_projection, query.probe_predicate
        )
        nb, np_ = build.num_rows, probe.num_rows
        build_rows = b_sel * nb
        probe_rows = p_sel * np_
        # Containment assumption: every (distinct) build key appears in
        # the probe at the probe's mean per-key multiplicity.
        probe_key_stats = p_stats.column(query.probe_key)
        probe_distinct = (
            max(probe_key_stats.distinct, 1) if probe_key_stats else max(np_, 1)
        )
        build_key_stats = b_stats.column(query.build_key)
        build_distinct = (
            max(build_key_stats.distinct, 1) if build_key_stats else max(nb, 1)
        )
        distinct_keys = min(build_rows, build_distinct)
        match_fraction = min(1.0, distinct_keys / probe_distinct)
        matched_probe = probe_rows * match_fraction
        out_rows = matched_probe
        output_cpu = self._output_cpu(out_rows, query.output)
        notes = {
            "build_rows": build_rows,
            "probe_rows": probe_rows,
            "matched_probe_rows": matched_probe,
        }
        estimates = []

        # baseline: GET both tables whole.
        cpu = (
            nb * SERVER_CPU_PER_ROW["filter"] * (query.build_predicate is not None)
            + np_ * SERVER_CPU_PER_ROW["filter"] * (query.probe_predicate is not None)
            + build_rows * SERVER_CPU_PER_ROW["hash_build"]
            + np_ * p_sel * SERVER_CPU_PER_ROW["hash_probe"]
            + output_cpu
        )
        estimates.append(self._finalize(
            "baseline join",
            [_phase(
                "load+join", build.partitions + probe.partitions,
                get_bytes=float(build.total_bytes + probe.total_bytes),
                cpu_seconds=cpu,
                records=nb + np_,
                fields=nb * len(build.schema) + np_ * len(probe.schema),
            )],
            notes,
        ))

        # filtered: push both selections/projections, one parallel phase.
        cpu = (
            build_rows * SERVER_CPU_PER_ROW["hash_build"]
            + probe_rows * SERVER_CPU_PER_ROW["hash_probe"]
            + output_cpu
        )
        estimates.append(self._finalize(
            "filtered join",
            [_phase(
                "select+join", build.partitions + probe.partitions,
                scan_bytes=float(build.total_bytes + probe.total_bytes),
                returned_bytes=build_rows * b_stats.projected_row_bytes(b_cols)
                + probe_rows * p_stats.projected_row_bytes(p_cols),
                term_evals=nb * _conjuncts(query.build_predicate)
                + np_ * _conjuncts(query.probe_predicate),
                cpu_seconds=cpu,
                records=build_rows + probe_rows,
                fields=build_rows * len(b_cols) + probe_rows * len(p_cols),
            )],
            notes,
        ))

        # Bloom: serial build scan, then Bloom-filtered probe scan.
        if build.schema.column(query.build_key).type == "int":
            hashes = optimal_num_hashes(fpr)
            bits = optimal_num_bits(int(max(distinct_keys, 1)), fpr)
            predicate_bytes = hashes * (bits + 60)
            degraded = predicate_bytes > EXPRESSION_LIMIT_BYTES
            bloom_pass = (
                probe_rows
                if degraded
                else matched_probe + (probe_rows - matched_probe) * fpr
            )
            phase1 = _phase(
                "build+bloom", build.partitions,
                scan_bytes=float(build.total_bytes),
                returned_bytes=build_rows * b_stats.projected_row_bytes(b_cols),
                term_evals=nb * _conjuncts(query.build_predicate),
                cpu_seconds=distinct_keys * SERVER_CPU_PER_ROW["bloom_insert"],
                records=build_rows, fields=build_rows * len(b_cols),
            )
            phase2 = _phase(
                "probe+join", probe.partitions,
                scan_bytes=float(probe.total_bytes),
                returned_bytes=bloom_pass * p_stats.projected_row_bytes(p_cols),
                term_evals=np_
                * (_conjuncts(query.probe_predicate) + (0 if degraded else hashes)),
                cpu_seconds=build_rows * SERVER_CPU_PER_ROW["hash_build"]
                + bloom_pass * SERVER_CPU_PER_ROW["hash_probe"]
                + output_cpu,
                records=bloom_pass, fields=bloom_pass * len(p_cols),
            )
            estimates.append(self._finalize(
                "bloom join", [phase1, phase2],
                {**notes, "bloom_bits": bits, "bloom_hashes": hashes,
                 "degraded": degraded},
            ))
        return estimates
