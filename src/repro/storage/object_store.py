"""The simulated S3 object store.

A passive, in-process stand-in for the S3 data plane: buckets hold
immutable byte blobs addressed by key, readable in full or by byte range.
All request metering, pricing, and the S3 Select engine live *above* this
layer (see :mod:`repro.cloud.client`), mirroring how the real S3 separates
storage from its request front-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import (
    InvalidRangeError,
    NoSuchBucketError,
    NoSuchKeyError,
)


@dataclass
class StoredObject:
    """One immutable object: payload bytes plus free-form metadata.

    Metadata carries hints the simulated control plane needs (e.g.
    ``format: csv|parquet``); the real S3 would infer the same from the
    request's input serialization.
    """

    data: bytes
    metadata: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)


class ObjectStore:
    """In-memory bucket/key -> object mapping with range reads."""

    def __init__(self):
        self._buckets: dict[str, dict[str, StoredObject]] = {}

    # ------------------------------------------------------------------
    # bucket operations
    # ------------------------------------------------------------------
    def create_bucket(self, bucket: str) -> None:
        """Create a bucket; creating an existing bucket is a no-op (like AWS)."""
        self._buckets.setdefault(bucket, {})

    def bucket_exists(self, bucket: str) -> bool:
        return bucket in self._buckets

    def _bucket(self, bucket: str) -> dict[str, StoredObject]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise NoSuchBucketError(bucket) from None

    # ------------------------------------------------------------------
    # object operations
    # ------------------------------------------------------------------
    def put_object(self, bucket: str, key: str, data: bytes, metadata: dict | None = None) -> None:
        """Store (or overwrite) an object."""
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"object data must be bytes, got {type(data).__name__}")
        self._bucket(bucket)[key] = StoredObject(bytes(data), dict(metadata or {}))

    def get_object(self, bucket: str, key: str) -> StoredObject:
        objects = self._bucket(bucket)
        try:
            return objects[key]
        except KeyError:
            raise NoSuchKeyError(bucket, key) from None

    def get_bytes(self, bucket: str, key: str) -> bytes:
        return self.get_object(bucket, key).data

    def get_range(self, bucket: str, key: str, first_byte: int, last_byte: int) -> bytes:
        """Read the inclusive byte range ``[first_byte, last_byte]``.

        Mirrors HTTP Range semantics: the end may exceed the object size
        (truncated), but the start must be inside the object.
        """
        data = self.get_object(bucket, key).data
        if first_byte < 0 or last_byte < first_byte:
            raise InvalidRangeError(
                f"invalid byte range [{first_byte}, {last_byte}]"
            )
        if first_byte >= len(data):
            raise InvalidRangeError(
                f"range start {first_byte} beyond object size {len(data)}"
            )
        return data[first_byte : last_byte + 1]

    def object_size(self, bucket: str, key: str) -> int:
        return self.get_object(bucket, key).size

    def object_exists(self, bucket: str, key: str) -> bool:
        return self.bucket_exists(bucket) and key in self._buckets[bucket]

    def delete_object(self, bucket: str, key: str) -> None:
        objects = self._bucket(bucket)
        objects.pop(key, None)  # S3 DELETE is idempotent

    def list_keys(self, bucket: str, prefix: str = "") -> list[str]:
        """List keys in a bucket with an optional prefix, sorted (like S3)."""
        objects = self._bucket(bucket)
        return sorted(k for k in objects if k.startswith(prefix))

    def iter_objects(self, bucket: str, prefix: str = "") -> Iterator[tuple[str, StoredObject]]:
        for key in self.list_keys(bucket, prefix):
            yield key, self._buckets[bucket][key]

    def total_bytes(self, bucket: str, prefix: str = "") -> int:
        """Total stored bytes under a prefix (used for storage-cost reports)."""
        return sum(obj.size for _, obj in self.iter_objects(bucket, prefix))
