"""A simplified Parquet-like columnar format ("SPQ1").

The paper's Section IX studies S3 Select over Parquet.  What matters for
that experiment is structural, not byte-exact Parquet compatibility:

* data is split into **row groups**;
* inside a row group every column is a separately addressable,
  individually compressed **chunk**;
* a **footer** describes chunk locations, so a scan touching only some
  columns only reads (and is only billed for) those chunks;
* compression shrinks objects to roughly 70 % of CSV (paper's figure).

Layout::

    SPQ1 | chunk chunk chunk ... | footer(JSON) | footer_len(u32 LE) | SPQ1

zlib stands in for Snappy (not installed in this environment); both are
byte-oriented general-purpose codecs, and the experiment only depends on
the compression *ratio*, not the codec identity.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.common.errors import ReproError
from repro.storage.csvcodec import chunk_rows, format_value
from repro.storage.schema import ColumnDef, TableSchema

MAGIC = b"SPQ1"
#: Default row-group size used by the paper's Parquet experiment (100 MB
#: of raw data per group at 10 GB scale); ours is row-count based.
DEFAULT_ROW_GROUP_ROWS = 100_000

_CODECS = ("none", "zlib")


class ParquetFormatError(ReproError):
    """The object is not a valid SPQ1 file."""


@dataclass(frozen=True)
class ChunkMeta:
    """Location of one column chunk inside the file."""

    offset: int
    compressed_size: int
    uncompressed_size: int


@dataclass(frozen=True)
class RowGroupMeta:
    """Metadata for one row group: row count and per-column chunks."""

    num_rows: int
    chunks: tuple[ChunkMeta, ...]  # one per schema column, in order


def _encode_column(values: Sequence[object]) -> bytes:
    """Serialize one column chunk as newline-separated CSV fields."""
    return "\n".join(format_value(v) for v in values).encode()


def _decode_column(data: bytes, column: ColumnDef, num_rows: int) -> list[object]:
    if num_rows == 0:
        return []
    fields = data.decode().split("\n")
    if len(fields) != num_rows:
        raise ParquetFormatError(
            f"column chunk has {len(fields)} values, expected {num_rows}"
        )
    return [column.parse(f) for f in fields]


def write_parquet(
    rows: Iterable[Sequence[object]],
    schema: TableSchema,
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    compression: str = "zlib",
) -> bytes:
    """Encode rows into an SPQ1 object."""
    if compression not in _CODECS:
        raise ParquetFormatError(f"unknown codec {compression!r}; use one of {_CODECS}")
    if row_group_rows <= 0:
        raise ParquetFormatError("row_group_rows must be positive")

    out = bytearray(MAGIC)
    groups: list[dict] = []
    buffer: list[Sequence[object]] = []

    def flush() -> None:
        if not buffer:
            return
        chunk_metas = []
        for col_idx in range(len(schema)):
            raw = _encode_column([row[col_idx] for row in buffer])
            payload = zlib.compress(raw) if compression == "zlib" else raw
            chunk_metas.append(
                {
                    "offset": len(out),
                    "compressed_size": len(payload),
                    "uncompressed_size": len(raw),
                }
            )
            out.extend(payload)
        groups.append({"num_rows": len(buffer), "chunks": chunk_metas})
        buffer.clear()

    for row in rows:
        buffer.append(row)
        if len(buffer) >= row_group_rows:
            flush()
    flush()

    footer = json.dumps(
        {
            "version": 1,
            "codec": compression,
            "schema": [{"name": c.name, "type": c.type} for c in schema.columns],
            "row_groups": groups,
        }
    ).encode()
    out.extend(footer)
    out.extend(struct.pack("<I", len(footer)))
    out.extend(MAGIC)
    return bytes(out)


class ParquetFile:
    """Reader over SPQ1 bytes with column-selective access.

    ``scan_bytes_for(columns)`` reports how many bytes a column-selective
    scan touches — this is exactly what the simulated S3 Select bills for
    Parquet input (the real service bills Parquet scans by bytes
    processed per referenced column).
    """

    def __init__(self, data: bytes):
        if len(data) < 12 or not data.startswith(MAGIC) or not data.endswith(MAGIC):
            raise ParquetFormatError("missing SPQ1 magic bytes")
        (footer_len,) = struct.unpack("<I", data[-8:-4])
        footer_end = len(data) - 8
        footer_start = footer_end - footer_len
        if footer_start < len(MAGIC):
            raise ParquetFormatError("footer length is corrupt")
        try:
            meta = json.loads(data[footer_start:footer_end])
        except json.JSONDecodeError as exc:
            raise ParquetFormatError("footer is not valid JSON") from exc
        self._data = data
        self._codec = meta["codec"]
        self.schema = TableSchema(
            [ColumnDef(c["name"], c["type"]) for c in meta["schema"]]
        )
        self.row_groups: tuple[RowGroupMeta, ...] = tuple(
            RowGroupMeta(
                num_rows=g["num_rows"],
                chunks=tuple(
                    ChunkMeta(
                        offset=c["offset"],
                        compressed_size=c["compressed_size"],
                        uncompressed_size=c["uncompressed_size"],
                    )
                    for c in g["chunks"]
                ),
            )
            for g in meta["row_groups"]
        )
        self._footer_size = footer_len + 8 + 2 * len(MAGIC)

    @property
    def num_rows(self) -> int:
        return sum(g.num_rows for g in self.row_groups)

    @property
    def footer_size(self) -> int:
        return self._footer_size

    def _read_chunk(self, group: RowGroupMeta, col_idx: int) -> list[object]:
        chunk = group.chunks[col_idx]
        payload = self._data[chunk.offset : chunk.offset + chunk.compressed_size]
        raw = zlib.decompress(payload) if self._codec == "zlib" else payload
        return _decode_column(raw, self.schema.columns[col_idx], group.num_rows)

    def read_columns(self, names: Sequence[str]) -> dict[str, list[object]]:
        """Materialize the named columns across all row groups."""
        indexes = [self.schema.index_of(n) for n in names]
        result: dict[str, list[object]] = {n: [] for n in names}
        for group in self.row_groups:
            for name, idx in zip(names, indexes):
                result[name].extend(self._read_chunk(group, idx))
        return result

    def iter_row_group_rows(
        self, names: Sequence[str] | None = None
    ) -> Iterator[list[tuple]]:
        """Lazily yield one batch of row tuples per row group.

        Only the referenced column chunks of each group are decompressed,
        and only when the group is reached — a consumer that stops early
        (LIMIT pushdown) never decodes the remaining groups.
        """
        names = list(names) if names is not None else list(self.schema.names)
        indexes = [self.schema.index_of(n) for n in names]
        for group in self.row_groups:
            columns = [self._read_chunk(group, idx) for idx in indexes]
            yield list(zip(*columns)) if columns else []

    def iter_batches(
        self,
        names: Sequence[str] | None = None,
        batch_size: int | None = None,
    ) -> Iterator[list[tuple]]:
        """Lazily yield RecordBatches, optionally re-chunked to ``batch_size``.

        ``batch_size=None`` keeps the natural row-group granularity (one
        batch per group), which avoids copying.
        """
        if batch_size is None:
            yield from self.iter_row_group_rows(names)
            return
        if batch_size <= 0:
            raise ParquetFormatError(f"batch_size must be positive, got {batch_size}")
        yield from chunk_rows(self.iter_rows(names), batch_size)

    def iter_rows(self, names: Sequence[str] | None = None) -> Iterator[tuple]:
        """Lazily yield row tuples (optionally projected to ``names``)."""
        for batch in self.iter_row_group_rows(names):
            yield from batch

    def read_rows(self, names: Sequence[str] | None = None) -> list[tuple]:
        """Materialize rows (optionally projected to ``names``)."""
        out: list[tuple] = []
        for batch in self.iter_row_group_rows(names):
            out.extend(batch)
        return out

    def scan_bytes_for(self, names: Sequence[str] | None = None) -> int:
        """Bytes a column-selective scan reads: referenced chunks + footer."""
        if names is None:
            indexes = list(range(len(self.schema)))
        else:
            indexes = sorted({self.schema.index_of(n) for n in names})
        touched = sum(
            group.chunks[i].compressed_size for group in self.row_groups for i in indexes
        )
        return touched + self._footer_size
