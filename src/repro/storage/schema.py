"""Table schemas: typed column descriptors shared by every layer.

CSV objects are untyped bytes on the wire; a :class:`TableSchema` tells
readers how to revive each field.  Dates are carried as ISO-8601 strings
(lexical order equals chronological order, which is all the paper's
queries need).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.common.errors import CatalogError

#: Supported logical column types.
COLUMN_TYPES = ("int", "float", "str", "date")

#: Rough encoded CSV field widths (bytes) by logical type.  Used by the
#: cost-based optimizer as a fallback when a table was registered
#: without collected statistics; measured statistics always win.
TYPICAL_FIELD_BYTES = {"int": 6.0, "float": 9.0, "str": 12.0, "date": 10.0}


def _parse_int(text: str) -> int | None:
    return int(text) if text else None


def _parse_float(text: str) -> float | None:
    return float(text) if text else None


def _parse_str(text: str) -> str | None:
    return text if text else None


_PARSERS: dict[str, Callable[[str], object]] = {
    "int": _parse_int,
    "float": _parse_float,
    "str": _parse_str,
    "date": _parse_str,
}


def _parse_int_column(texts: Sequence[str]) -> list:
    return [int(t) if t else None for t in texts]


def _parse_float_column(texts: Sequence[str]) -> list:
    return [float(t) if t else None for t in texts]


def _parse_str_column(texts: Sequence[str]) -> list:
    return [t if t else None for t in texts]


#: Column-at-a-time twins of ``_PARSERS`` for the vectorized decoder:
#: one comprehension per column instead of a Python call per field.
_COLUMN_PARSERS: dict[str, Callable[[Sequence[str]], list]] = {
    "int": _parse_int_column,
    "float": _parse_float_column,
    "str": _parse_str_column,
    "date": _parse_str_column,
}


@dataclass(frozen=True)
class ColumnDef:
    """One column: a name plus a logical type."""

    name: str
    type: str

    def __post_init__(self):
        if self.type not in COLUMN_TYPES:
            raise CatalogError(
                f"unknown column type {self.type!r} for column {self.name!r};"
                f" expected one of {COLUMN_TYPES}"
            )

    def parse(self, text: str) -> object:
        """Parse a CSV field into this column's Python type ('' -> NULL)."""
        return _PARSERS[self.type](text)

    def parse_column(self, texts: Sequence[str]) -> list:
        """Parse a whole column of CSV fields at once ('' -> NULL)."""
        return _COLUMN_PARSERS[self.type](texts)

    def typical_field_bytes(self) -> float:
        """Ballpark encoded width of one field of this type."""
        return TYPICAL_FIELD_BYTES[self.type]


class TableSchema:
    """An ordered list of columns with fast name -> index lookup."""

    def __init__(self, columns: Sequence[ColumnDef]):
        if not columns:
            raise CatalogError("a table schema needs at least one column")
        names = [c.name.lower() for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema: {names}")
        self.columns: tuple[ColumnDef, ...] = tuple(columns)
        self._index = {c.name.lower(): i for i, c in enumerate(columns)}

    @classmethod
    def of(cls, *specs: str) -> "TableSchema":
        """Build a schema from ``"name:type"`` strings.

        >>> TableSchema.of("l_orderkey:int", "l_shipdate:date").names
        ('l_orderkey', 'l_shipdate')
        """
        columns = []
        for spec in specs:
            name, _, type_name = spec.partition(":")
            columns.append(ColumnDef(name=name, type=type_name or "str"))
        return cls(columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def name_to_index(self) -> dict[str, int]:
        return dict(self._index)

    def index_of(self, name: str) -> int:
        key = name.lower()
        if key not in self._index:
            raise CatalogError(
                f"no column {name!r} in schema with columns {self.names}"
            )
        return self._index[key]

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def project(self, names: Iterable[str]) -> "TableSchema":
        """Schema of a projection of this schema, in the given order."""
        return TableSchema([self.column(n) for n in names])

    def parse_row(self, fields: Sequence[str]) -> tuple:
        """Parse one CSV record (list of strings) into a typed tuple."""
        if len(fields) != len(self.columns):
            raise CatalogError(
                f"row has {len(fields)} fields, schema has {len(self.columns)}"
            )
        return tuple(col.parse(field) for col, field in zip(self.columns, fields))

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TableSchema) and self.columns == other.columns

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.type}" for c in self.columns)
        return f"TableSchema({inner})"
