"""CSV encode/decode for table objects.

Objects are stored exactly as AWS would see them: UTF-8 bytes, ``\\n``
record delimiter, ``,`` field delimiter, RFC-4180 quoting.  The paper's
index-table design (Section IV-A) needs the *byte offset of every row*,
so the encoder can report per-row extents as it writes.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.engine.batch import Batch
from repro.storage.schema import TableSchema

RECORD_DELIM = "\n"
FIELD_DELIM = ","
QUOTE = '"'

#: Rows per :class:`RecordBatch` in the streaming execution pipeline.
#: Large enough to amortize per-batch overhead, small enough that a
#: batch of wide TPC-H rows stays cache-resident.
DEFAULT_BATCH_SIZE = 4096


def format_value(value: object) -> str:
    """Render one Python value as a CSV field ('' for NULL)."""
    if value is None:
        return ""
    if isinstance(value, float):
        # Repr round-trips; avoid trailing noise for integral floats.
        if value.is_integer():
            return f"{value:.1f}"
        return repr(value)
    return str(value)


#: Characters that force a field into RFC-4180 quotes: the field and
#: record delimiters, the quote itself, and CR (CRLF tolerance).
_QUOTE_TRIGGERS = frozenset({FIELD_DELIM, QUOTE, RECORD_DELIM, "\n", "\r"})


def _escape(field: str) -> str:
    if any(ch in _QUOTE_TRIGGERS for ch in field):
        return QUOTE + field.replace(QUOTE, QUOTE + QUOTE) + QUOTE
    return field


def encode_row(row: Sequence[object]) -> bytes:
    """Encode one tuple as a CSV line including the record delimiter."""
    line = FIELD_DELIM.join(_escape(format_value(v)) for v in row)
    return (line + RECORD_DELIM).encode()


@dataclass(frozen=True)
class RowExtent:
    """Byte extent of one encoded row inside a CSV object (inclusive)."""

    first_byte: int
    last_byte: int


def encode_table(
    rows: Iterable[Sequence[object]], header: Sequence[str] | None = None
) -> tuple[bytes, list[RowExtent]]:
    """Encode rows to CSV bytes, returning per-row byte extents.

    The extents exclude the header line and are exactly what the paper's
    index tables store (``first_byte_offset`` / ``last_byte_offset``).
    """
    buf = io.BytesIO()
    if header is not None:
        buf.write(encode_row(list(header)))
    extents: list[RowExtent] = []
    for row in rows:
        start = buf.tell()
        encoded = encode_row(row)
        buf.write(encoded)
        extents.append(RowExtent(first_byte=start, last_byte=start + len(encoded) - 1))
    return buf.getvalue(), extents


def iter_records(data: bytes) -> Iterator[list[str]]:
    """Parse CSV bytes into records (lists of string fields).

    Handles RFC-4180 quoting; tolerant of a missing trailing newline.
    """
    text = data.decode()
    field: list[str] = []
    record: list[str] = []
    in_quotes = False
    i = 0
    n = len(text)
    saw_any = False
    while i < n:
        ch = text[i]
        if in_quotes:
            if ch == QUOTE:
                if i + 1 < n and text[i + 1] == QUOTE:
                    field.append(QUOTE)
                    i += 2
                    continue
                in_quotes = False
                i += 1
                continue
            field.append(ch)
            i += 1
            continue
        if ch == QUOTE:
            in_quotes = True
            saw_any = True
            i += 1
            continue
        if ch == FIELD_DELIM:
            record.append("".join(field))
            field = []
            saw_any = True
            i += 1
            continue
        if ch == "\n":
            record.append("".join(field))
            yield record
            field, record = [], []
            saw_any = False
            i += 1
            continue
        if ch == "\r":
            i += 1
            continue
        field.append(ch)
        saw_any = True
        i += 1
    if saw_any or record:
        record.append("".join(field))
        yield record


def iter_records_with_offsets(data: bytes) -> Iterator[tuple[int, int, list[str]]]:
    """Like :func:`iter_records` but yields ``(first_byte, last_byte, record)``.

    Offsets are inclusive *byte* positions of the encoded record
    (including its trailing newline, when present) — the convention the
    paper's index tables use.  Character positions and byte positions
    diverge on non-ASCII content, so the scan tracks the UTF-8 width of
    every consumed character.  Quoting is handled, so embedded delimiters
    do not split records.
    """
    text = data.decode()
    ascii_only = len(text) == len(data)
    field: list[str] = []
    record: list[str] = []
    in_quotes = False
    i = 0
    pos = 0  # byte offset of text[i]
    n = len(text)
    start = 0
    saw_any = False

    def width(ch: str) -> int:
        return 1 if ascii_only else len(ch.encode())

    while i < n:
        ch = text[i]
        if in_quotes:
            if ch == QUOTE:
                if i + 1 < n and text[i + 1] == QUOTE:
                    field.append(QUOTE)
                    i += 2
                    pos += 2
                    continue
                in_quotes = False
                i += 1
                pos += 1
                continue
            field.append(ch)
            i += 1
            pos += width(ch)
            continue
        if ch == QUOTE:
            in_quotes = True
            saw_any = True
            i += 1
            pos += 1
            continue
        if ch == FIELD_DELIM:
            record.append("".join(field))
            field = []
            saw_any = True
            i += 1
            pos += 1
            continue
        if ch == "\n":
            record.append("".join(field))
            yield start, pos, record
            field, record = [], []
            saw_any = False
            i += 1
            pos += 1
            start = pos
            continue
        if ch == "\r":
            i += 1
            pos += 1
            continue
        field.append(ch)
        saw_any = True
        i += 1
        pos += width(ch)
    if saw_any or record:
        record.append("".join(field))
        yield start, len(data) - 1, record


def chunk_rows(rows: Iterable[tuple], batch_size: int) -> Iterator[list[tuple]]:
    """Chunk a row iterable into RecordBatches of ``batch_size`` rows.

    The single chunking implementation behind every batch iterator in
    the pipeline (CSV/Parquet decode, S3 Select evaluation, partition
    re-chunking, operator helpers).  The final batch may be short;
    empty input yields no batches.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list[tuple] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def iter_decode_table(
    data: bytes, schema: TableSchema, has_header: bool = True
) -> Iterator[tuple]:
    """Lazily decode CSV bytes into typed tuples according to ``schema``.

    Unlike :func:`decode_table` nothing is materialized: rows are parsed
    on demand, so a consumer that stops early (LIMIT, top-K sampling)
    never pays for the rest of the object.
    """
    records = iter_records(data)
    if has_header:
        next(records, None)
    parse_row = schema.parse_row
    for record in records:
        yield parse_row(record)


def iter_decode_batches(
    data: bytes,
    schema: TableSchema,
    batch_size: int = DEFAULT_BATCH_SIZE,
    has_header: bool = True,
) -> Iterator[list[tuple]]:
    """Lazily decode CSV bytes into :data:`DEFAULT_BATCH_SIZE`-row batches.

    The unit of the streaming execution core: each yielded list is one
    RecordBatch.  The final batch may be short; empty input yields no
    batches.
    """
    yield from chunk_rows(
        iter_decode_table(data, schema, has_header=has_header), batch_size
    )


def iter_decode_column_batches(
    data: bytes,
    schema: TableSchema,
    batch_size: int = DEFAULT_BATCH_SIZE,
    has_header: bool = True,
) -> Iterator[Batch]:
    """Lazily decode CSV bytes straight into columnar :class:`Batch`es.

    The vectorized twin of :func:`iter_decode_batches`: raw string
    records are gathered per batch, transposed once, and parsed with one
    typed comprehension per column — no intermediate row tuples.  Rows
    whose field count disagrees with the schema raise the same
    :class:`~repro.common.errors.CatalogError` as the row-wise decoder.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    records = iter_records(data)
    if has_header:
        next(records, None)
    ncols = len(schema.columns)
    raw: list[list[str]] = []
    for record in records:
        if len(record) != ncols:
            schema.parse_row(record)  # raises the canonical CatalogError
        raw.append(record)
        if len(raw) >= batch_size:
            yield _parse_column_batch(raw, schema)
            raw = []
    if raw:
        yield _parse_column_batch(raw, schema)


def _parse_column_batch(raw: list[list[str]], schema: TableSchema) -> Batch:
    text_columns = zip(*raw)
    return Batch(
        [col.parse_column(texts) for col, texts in zip(schema.columns, text_columns)],
        len(raw),
    )


def decode_table(
    data: bytes, schema: TableSchema, has_header: bool = True
) -> list[tuple]:
    """Decode CSV bytes into typed tuples according to ``schema``."""
    return list(iter_decode_table(data, schema, has_header=has_header))
