"""The four micro-operator queries of Figure 10 (green-shaded bars).

Each pairs the relevant baseline with the paper's best pushdown variant:

* **filter** — a moderately selective lineitem scan;
* **group-by** — S3-side group-by over ``l_returnflag`` aggregates;
* **top-k** — K=100 over ``l_extendedprice`` with sampling;
* **join** — the Section V synthetic customer ⋈ orders query at the
  default parameters (``c_acctbal <= -950``, no orders filter).
"""

from __future__ import annotations

from functools import partial

from repro.cloud.context import CloudContext, QueryExecution
from repro.engine.catalog import Catalog
from repro.queries.common import items
from repro.queries.tpch_queries import QueryVariants
from repro.sqlparser.parser import parse_expression
from repro.strategies.filter import FilterQuery, s3_side_filter, server_side_filter
from repro.strategies.groupby import (
    AggSpec,
    GroupByQuery,
    s3_side_group_by,
    server_side_group_by,
)
from repro.strategies.join import JoinQuery, baseline_join, bloom_join
from repro.strategies.topk import TopKQuery, sampling_top_k, server_side_top_k

_FILTER_QUERY = FilterQuery(
    table="lineitem",
    predicate=parse_expression("l_shipdate < '1992-03-01'"),
    projection=["l_orderkey", "l_extendedprice", "l_shipdate"],
)

_GROUPBY_QUERY = GroupByQuery(
    table="lineitem",
    group_columns=["l_returnflag"],
    aggregates=[
        AggSpec("sum", "l_quantity", "sum_qty"),
        AggSpec("sum", "l_extendedprice", "sum_price"),
    ],
)

_TOPK_QUERY = TopKQuery(table="lineitem", order_column="l_extendedprice", k=100)

_JOIN_QUERY = JoinQuery(
    build_table="customer",
    probe_table="orders",
    build_key="c_custkey",
    probe_key="o_custkey",
    build_predicate=parse_expression("c_acctbal <= -950"),
    build_projection=["c_custkey"],
    probe_projection=["o_custkey", "o_totalprice"],
    output=items("SUM(o_totalprice) AS total"),
)


def _wrap(fn, query) -> "QueryFn":
    def run(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
        return fn(ctx, catalog, query)
    return run


MICRO_QUERIES: dict[str, QueryVariants] = {
    "filter": QueryVariants(
        "filter",
        _wrap(server_side_filter, _FILTER_QUERY),
        _wrap(s3_side_filter, _FILTER_QUERY),
    ),
    "group-by": QueryVariants(
        "group-by",
        _wrap(server_side_group_by, _GROUPBY_QUERY),
        _wrap(s3_side_group_by, _GROUPBY_QUERY),
    ),
    "top-k": QueryVariants(
        "top-k",
        _wrap(server_side_top_k, _TOPK_QUERY),
        _wrap(sampling_top_k, _TOPK_QUERY),
    ),
    "join": QueryVariants(
        "join",
        _wrap(baseline_join, _JOIN_QUERY),
        _wrap(bloom_join, _JOIN_QUERY),
    ),
}
