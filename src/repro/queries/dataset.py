"""Convenience loader: generate + load a TPC-H dataset into a context."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cloud.context import CloudContext
from repro.engine.catalog import DEFAULT_PARTITIONS, Catalog, load_table
from repro.workloads.tpch import TABLE_SCHEMAS, TpchGenerator

#: The tables the paper's experiments touch.
DEFAULT_TABLES = ("customer", "orders", "lineitem", "part")


def load_tpch(
    ctx: CloudContext,
    catalog: Catalog,
    scale_factor: float = 0.01,
    tables: Sequence[str] = DEFAULT_TABLES,
    partitions: int = DEFAULT_PARTITIONS,
    data_format: str = "csv",
    index_columns: dict[str, Iterable[str]] | None = None,
    seed: int | None = None,
) -> TpchGenerator:
    """Generate and load the named TPC-H tables; returns the generator.

    Args:
        index_columns: optional ``table -> columns`` to build Section
            IV-A index tables for (e.g. ``{"lineitem": ["l_orderkey"]}``).
    """
    gen = TpchGenerator(scale_factor=scale_factor, seed=seed)
    index_columns = index_columns or {}
    for name in tables:
        load_table(
            ctx,
            catalog,
            name,
            gen.table(name),
            TABLE_SCHEMAS[name],
            partitions=partitions,
            data_format=data_format,
            index_columns=index_columns.get(name, ()),
        )
    return gen
