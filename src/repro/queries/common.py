"""Shared helpers for the TPC-H query implementations."""

from __future__ import annotations

from typing import Sequence

from repro.bloom.filter import build_bloom_filter_within_limit
from repro.cloud.context import CloudContext
from repro.engine.catalog import TableInfo
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_expression
from repro.strategies.scans import projection_sql, select_table


def items(*specs: str) -> list[ast.SelectItem]:
    """Parse ``"expr [AS alias]"`` strings into select items."""
    out = []
    for spec in specs:
        expr_sql, _, alias = spec.partition(" AS ")
        out.append(
            ast.SelectItem(expr=parse_expression(expr_sql), alias=alias.strip() or None)
        )
    return out


def bloom_where(
    keys: Sequence[int],
    attr: str,
    base_sql: str,
    fpr: float = 0.01,
    seed: int | None = None,
) -> str | None:
    """Bloom predicate for ``attr``, or ``None`` if it cannot fit 256 KB."""
    unique = list(dict.fromkeys(keys))
    outcome = build_bloom_filter_within_limit(
        unique, fpr, attr, sql_overhead_bytes=len(base_sql.encode()) + 16, seed=seed
    )
    if outcome.bloom is None:
        return None
    return outcome.bloom.to_sql_predicate(attr)


def select_with_bloom(
    ctx: CloudContext,
    table: TableInfo,
    columns: list[str],
    where: str | None,
    bloom_keys: Sequence[int] | None,
    bloom_attr: str | None,
    fpr: float = 0.01,
) -> tuple[list[tuple], list[str]]:
    """S3 Select scan with an optional Bloom predicate appended."""
    base_sql = projection_sql(columns, where)
    clauses = [where] if where else []
    if bloom_keys is not None and bloom_attr is not None:
        clause = bloom_where(bloom_keys, bloom_attr, base_sql, fpr)
        if clause is not None:
            clauses.append(clause)
    sql = projection_sql(columns, " AND ".join(clauses) or None)
    rows, _ = select_table(ctx, table, sql)
    return rows, columns
