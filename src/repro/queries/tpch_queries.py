"""TPC-H queries Q1, Q3, Q6, Q14, Q17, Q19 — the paper's Figure 10 suite.

Every query comes in two variants matching the paper's configurations:

* **baseline** — "PushdownDB (Baseline)": plain GETs of whole tables,
  everything computed on the query node (no S3 Select);
* **optimized** — "PushdownDB (Optimized)": the pushdown algorithms of
  Sections IV-VII (selection/projection/aggregation pushdown, Bloom
  joins, S3-side group-by).

Each variant is a function ``(ctx, catalog) -> QueryExecution`` over
tables loaded by :func:`repro.queries.dataset.load_tpch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cloud.context import CloudContext, QueryExecution
from repro.engine.catalog import Catalog
from repro.engine.operators.filter import filter_rows
from repro.engine.operators.groupby import group_by_aggregate
from repro.engine.operators.hashjoin import hash_join
from repro.engine.operators.sort import sort_rows
from repro.engine.operators.topk import top_k
from repro.queries.common import items, select_with_bloom
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_expression
from repro.strategies.base import finish_output
from repro.strategies.groupby import AggSpec, GroupByQuery, s3_side_group_by
from repro.strategies.scans import (
    get_table,
    merge_sum_partials,
    phase_since,
    projection_sql,
    select_aggregate,
    select_table,
)

QueryFn = Callable[[CloudContext, Catalog], QueryExecution]


@dataclass(frozen=True)
class QueryVariants:
    """Baseline and optimized implementations of one benchmark query."""

    name: str
    baseline: QueryFn
    optimized: QueryFn


# ----------------------------------------------------------------------
# Q1: pricing summary report (filter + 8 aggregates, 2 group columns)
# ----------------------------------------------------------------------

_Q1_DATE = "1998-09-02"  # 1998-12-01 minus DELTA=90 days
_Q1_AGGS = [
    AggSpec("sum", "l_quantity", "sum_qty"),
    AggSpec("sum", "l_extendedprice", "sum_base_price"),
    AggSpec("sum", "l_extendedprice * (1 - l_discount)", "sum_disc_price"),
    AggSpec("sum", "l_extendedprice * (1 - l_discount) * (1 + l_tax)", "sum_charge"),
    AggSpec("avg", "l_quantity", "avg_qty"),
    AggSpec("avg", "l_extendedprice", "avg_price"),
    AggSpec("avg", "l_discount", "avg_disc"),
    AggSpec("count", "1", "count_order"),
]
_Q1_ORDER = [
    ast.OrderItem(expr=ast.Column("l_returnflag")),
    ast.OrderItem(expr=ast.Column("l_linestatus")),
]


def q1_baseline(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    lineitem = catalog.get("lineitem")
    mark = ctx.begin_query()
    rows = get_table(ctx, lineitem)
    filtered = filter_rows(
        rows, lineitem.schema.names, parse_expression(f"l_shipdate <= '{_Q1_DATE}'")
    )
    grouped = group_by_aggregate(
        filtered.rows,
        lineitem.schema.names,
        [ast.Column("l_returnflag"), ast.Column("l_linestatus")],
        [a.to_select_item() for a in _Q1_AGGS],
    )
    final = sort_rows(grouped.rows, grouped.column_names, _Q1_ORDER)
    cpu = filtered.cpu_seconds + grouped.cpu_seconds + final.cpu_seconds
    phase = phase_since(
        ctx, mark, "q1", streams=lineitem.partitions, server_cpu_seconds=cpu,
        ingest=(len(rows), len(lineitem.schema)),
    )
    return ctx.finalize(mark, final.rows, final.column_names, [phase], strategy="q1 baseline")


def q1_optimized(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    """Push the whole aggregation to S3 via S3-side group-by (6 groups)."""
    execution = s3_side_group_by(
        ctx,
        catalog,
        GroupByQuery(
            table="lineitem",
            group_columns=["l_returnflag", "l_linestatus"],
            aggregates=_Q1_AGGS,
            predicate=parse_expression(f"l_shipdate <= '{_Q1_DATE}'"),
        ),
    )
    execution.rows = sort_rows(execution.rows, execution.column_names, _Q1_ORDER).rows
    execution.strategy = "q1 optimized"
    return execution


# ----------------------------------------------------------------------
# Q3: shipping priority (3-table join + group-by + top-10)
# ----------------------------------------------------------------------

_Q3_DATE = "1995-03-15"
_Q3_REVENUE = items("SUM(l_extendedprice * (1 - l_discount)) AS revenue")[0]
_Q3_ORDER = [
    ast.OrderItem(expr=ast.Column("revenue"), descending=True),
    ast.OrderItem(expr=ast.Column("o_orderdate")),
]


def _q3_local_tail(ctx, mark, joined_rows, names, phases, strategy):
    grouped = group_by_aggregate(
        joined_rows,
        names,
        [ast.Column("l_orderkey"), ast.Column("o_orderdate"), ast.Column("o_shippriority")],
        [_Q3_REVENUE],
    )
    final = top_k(grouped.rows, grouped.column_names, _Q3_ORDER, 10)
    phases[-1].server_cpu_seconds += grouped.cpu_seconds + final.cpu_seconds
    return ctx.finalize(mark, final.rows, final.column_names, phases, strategy=strategy)


def q3_baseline(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    customer, orders, lineitem = (
        catalog.get("customer"), catalog.get("orders"), catalog.get("lineitem")
    )
    mark = ctx.begin_query()
    c_rows = get_table(ctx, customer)
    o_rows = get_table(ctx, orders)
    l_rows = get_table(ctx, lineitem)
    cpu = 0.0
    c = filter_rows(c_rows, customer.schema.names,
                    parse_expression("c_mktsegment = 'BUILDING'"))
    o = filter_rows(o_rows, orders.schema.names,
                    parse_expression(f"o_orderdate < '{_Q3_DATE}'"))
    li = filter_rows(l_rows, lineitem.schema.names,
                     parse_expression(f"l_shipdate > '{_Q3_DATE}'"))
    cpu += c.cpu_seconds + o.cpu_seconds + li.cpu_seconds
    co = hash_join(c.rows, customer.schema.names, o.rows, orders.schema.names,
                   "c_custkey", "o_custkey")
    col = hash_join(co.rows, co.column_names, li.rows, lineitem.schema.names,
                    "o_orderkey", "l_orderkey")
    cpu += co.cpu_seconds + col.cpu_seconds
    total_streams = customer.partitions + orders.partitions + lineitem.partitions
    n_records = len(c_rows) + len(o_rows) + len(l_rows)
    n_fields = (
        len(c_rows) * len(customer.schema)
        + len(o_rows) * len(orders.schema)
        + len(l_rows) * len(lineitem.schema)
    )
    phase = phase_since(
        ctx, mark, "q3", streams=total_streams, server_cpu_seconds=cpu,
        ingest=(n_records, n_fields / max(n_records, 1)),
    )
    return _q3_local_tail(ctx, mark, col.rows, col.column_names, [phase], "q3 baseline")


def q3_optimized(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    """Cascaded Bloom joins: customer keys -> orders, order keys -> lineitem."""
    customer, orders, lineitem = (
        catalog.get("customer"), catalog.get("orders"), catalog.get("lineitem")
    )
    mark = ctx.begin_query()
    c_rows, _ = select_table(
        ctx, customer,
        projection_sql(["c_custkey"], "c_mktsegment = 'BUILDING'"),
    )
    cust_keys = [r[0] for r in c_rows]
    phase1 = phase_since(
        ctx, mark, "customer", streams=customer.partitions, ingest=(len(c_rows), 1)
    )

    mark2 = ctx.metrics.mark()
    o_cols = ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"]
    o_rows, _ = select_with_bloom(
        ctx, orders, o_cols, f"o_orderdate < '{_Q3_DATE}'",
        cust_keys, "o_custkey",
    )
    # Eliminate Bloom false positives with an exact semi-join.
    cust_set = set(cust_keys)
    o_rows = [r for r in o_rows if r[1] in cust_set]
    phase2 = phase_since(
        ctx, mark2, "orders", streams=orders.partitions,
        ingest=(len(o_rows), len(o_cols)),
    )

    mark3 = ctx.metrics.mark()
    l_cols = ["l_orderkey", "l_extendedprice", "l_discount"]
    l_rows, _ = select_with_bloom(
        ctx, lineitem, l_cols, f"l_shipdate > '{_Q3_DATE}'",
        [r[0] for r in o_rows], "l_orderkey",
    )
    joined = hash_join(o_rows, o_cols, l_rows, l_cols, "o_orderkey", "l_orderkey")
    phase3 = phase_since(
        ctx, mark3, "lineitem", streams=lineitem.partitions,
        server_cpu_seconds=joined.cpu_seconds, ingest=(len(l_rows), len(l_cols)),
    )
    return _q3_local_tail(
        ctx, mark, joined.rows, joined.column_names,
        [phase1, phase2, phase3], "q3 optimized",
    )


# ----------------------------------------------------------------------
# Q6: forecasting revenue change (pure filter + aggregate)
# ----------------------------------------------------------------------

_Q6_WHERE = (
    "l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'"
    " AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
)


def q6_baseline(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    lineitem = catalog.get("lineitem")
    mark = ctx.begin_query()
    rows = get_table(ctx, lineitem)
    filtered = filter_rows(rows, lineitem.schema.names, parse_expression(_Q6_WHERE))
    out = finish_output(
        filtered.rows, lineitem.schema.names,
        items("SUM(l_extendedprice * l_discount) AS revenue"),
    )
    phase = phase_since(
        ctx, mark, "q6", streams=lineitem.partitions,
        server_cpu_seconds=filtered.cpu_seconds + out.cpu_seconds,
        ingest=(len(rows), len(lineitem.schema)),
    )
    return ctx.finalize(mark, out.rows, out.column_names, [phase], strategy="q6 baseline")


def q6_optimized(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    """The entire query is inside the S3 Select dialect: push it all."""
    lineitem = catalog.get("lineitem")
    mark = ctx.begin_query()
    sql = f"SELECT SUM(l_extendedprice * l_discount) FROM S3Object WHERE {_Q6_WHERE}"
    partials, _ = select_aggregate(ctx, lineitem, sql)
    merged = merge_sum_partials(partials)
    phase = phase_since(ctx, mark, "q6", streams=lineitem.partitions)
    return ctx.finalize(
        mark, [tuple(merged)], ["revenue"], [phase], strategy="q6 optimized"
    )


# ----------------------------------------------------------------------
# Q14: promotion effect (lineitem ⋈ part, CASE aggregate)
# ----------------------------------------------------------------------

_Q14_WHERE = "l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'"
_Q14_OUTPUT = items(
    "100 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount)"
    " ELSE 0 END) / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue"
)


def q14_baseline(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    lineitem, part = catalog.get("lineitem"), catalog.get("part")
    mark = ctx.begin_query()
    l_rows = get_table(ctx, lineitem)
    p_rows = get_table(ctx, part)
    li = filter_rows(l_rows, lineitem.schema.names, parse_expression(_Q14_WHERE))
    joined = hash_join(
        li.rows, lineitem.schema.names, p_rows, part.schema.names,
        "l_partkey", "p_partkey",
    )
    out = finish_output(joined.rows, joined.column_names, _Q14_OUTPUT)
    n_records = len(l_rows) + len(p_rows)
    n_fields = len(l_rows) * len(lineitem.schema) + len(p_rows) * len(part.schema)
    phase = phase_since(
        ctx, mark, "q14", streams=lineitem.partitions + part.partitions,
        server_cpu_seconds=li.cpu_seconds + joined.cpu_seconds + out.cpu_seconds,
        ingest=(n_records, n_fields / max(n_records, 1)),
    )
    return ctx.finalize(mark, out.rows, out.column_names, [phase], strategy="q14 baseline")


def q14_optimized(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    """Filtered lineitem is the small side; Bloom its part keys into part."""
    lineitem, part = catalog.get("lineitem"), catalog.get("part")
    mark = ctx.begin_query()
    l_cols = ["l_partkey", "l_extendedprice", "l_discount"]
    l_rows, _ = select_table(ctx, lineitem, projection_sql(l_cols, _Q14_WHERE))
    phase1 = phase_since(
        ctx, mark, "lineitem", streams=lineitem.partitions,
        ingest=(len(l_rows), len(l_cols)),
    )

    mark2 = ctx.metrics.mark()
    p_cols = ["p_partkey", "p_type"]
    p_rows, _ = select_with_bloom(
        ctx, part, p_cols, None, [r[0] for r in l_rows], "p_partkey"
    )
    joined = hash_join(l_rows, l_cols, p_rows, p_cols, "l_partkey", "p_partkey")
    out = finish_output(joined.rows, joined.column_names, _Q14_OUTPUT)
    phase2 = phase_since(
        ctx, mark2, "part", streams=part.partitions,
        server_cpu_seconds=joined.cpu_seconds + out.cpu_seconds,
        ingest=(len(p_rows), len(p_cols)),
    )
    return ctx.finalize(
        mark, out.rows, out.column_names, [phase1, phase2], strategy="q14 optimized"
    )


# ----------------------------------------------------------------------
# Q17: small-quantity-order revenue (correlated subquery over lineitem)
# ----------------------------------------------------------------------

_Q17_PART_WHERE = "p_brand = 'Brand#23' AND p_container = 'MED BOX'"


def _q17_local(part_keys: set, li_rows: list[tuple]) -> list[tuple]:
    """avg_yearly = SUM(l_extendedprice | l_quantity < 0.2*avg(part)) / 7.

    ``li_rows`` are ``(l_partkey, l_quantity, l_extendedprice)`` already
    restricted (or Bloom-narrowed) to the candidate parts.
    """
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for partkey, quantity, _ in li_rows:
        if partkey in part_keys:
            sums[partkey] = sums.get(partkey, 0.0) + quantity
            counts[partkey] = counts.get(partkey, 0) + 1
    total = 0.0
    for partkey, quantity, price in li_rows:
        if partkey in part_keys and counts.get(partkey):
            if quantity < 0.2 * (sums[partkey] / counts[partkey]):
                total += price
    return [(total / 7.0,)]


def q17_baseline(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    lineitem, part = catalog.get("lineitem"), catalog.get("part")
    mark = ctx.begin_query()
    p_rows = get_table(ctx, part)
    l_rows = get_table(ctx, lineitem)
    p = filter_rows(p_rows, part.schema.names, parse_expression(_Q17_PART_WHERE))
    keys = {r[0] for r in p.rows}
    schema = lineitem.schema
    idx = [schema.index_of(c) for c in ("l_partkey", "l_quantity", "l_extendedprice")]
    li = [(r[idx[0]], r[idx[1]], r[idx[2]]) for r in l_rows]
    out_rows = _q17_local(keys, li)
    cpu = p.cpu_seconds + len(l_rows) * 7e-8
    n_records = len(l_rows) + len(p_rows)
    n_fields = len(l_rows) * len(lineitem.schema) + len(p_rows) * len(part.schema)
    phase = phase_since(
        ctx, mark, "q17", streams=lineitem.partitions + part.partitions,
        server_cpu_seconds=cpu, ingest=(n_records, n_fields / max(n_records, 1)),
    )
    return ctx.finalize(mark, out_rows, ["avg_yearly"], [phase], strategy="q17 baseline")


def q17_optimized(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    lineitem, part = catalog.get("lineitem"), catalog.get("part")
    mark = ctx.begin_query()
    p_rows, _ = select_table(
        ctx, part, projection_sql(["p_partkey"], _Q17_PART_WHERE)
    )
    keys = {r[0] for r in p_rows}
    phase1 = phase_since(
        ctx, mark, "part", streams=part.partitions, ingest=(len(p_rows), 1)
    )

    mark2 = ctx.metrics.mark()
    l_cols = ["l_partkey", "l_quantity", "l_extendedprice"]
    l_rows, _ = select_with_bloom(
        ctx, lineitem, l_cols, None, sorted(keys), "l_partkey"
    )
    out_rows = _q17_local(keys, l_rows)
    phase2 = phase_since(
        ctx, mark2, "lineitem", streams=lineitem.partitions,
        server_cpu_seconds=len(l_rows) * 7e-8, ingest=(len(l_rows), len(l_cols)),
    )
    return ctx.finalize(
        mark, out_rows, ["avg_yearly"], [phase1, phase2], strategy="q17 optimized"
    )


# ----------------------------------------------------------------------
# Q19: discounted revenue (disjunctive join predicate)
# ----------------------------------------------------------------------

_Q19_BRANCHES = [
    ("Brand#12", ("SM CASE", "SM BOX", "SM PACK", "SM PKG"), (1, 11), (1, 5)),
    ("Brand#23", ("MED BAG", "MED BOX", "MED PKG", "MED PACK"), (10, 20), (1, 10)),
    ("Brand#34", ("LG CASE", "LG BOX", "LG PACK", "LG PKG"), (20, 30), (1, 15)),
]
_Q19_COMMON_L = (
    "l_shipmode IN ('AIR', 'AIR REG') AND l_shipinstruct = 'DELIVER IN PERSON'"
)
_Q19_OUTPUT = items("SUM(l_extendedprice * (1 - l_discount)) AS revenue")


def _q19_branch_sql(brand, containers, qty, size) -> str:
    container_list = ", ".join(f"'{c}'" for c in containers)
    return (
        f"(p_brand = '{brand}' AND p_container IN ({container_list})"
        f" AND l_quantity BETWEEN {qty[0]} AND {qty[1]}"
        f" AND p_size BETWEEN {size[0]} AND {size[1]})"
    )


def _q19_full_predicate() -> ast.Expr:
    branches = " OR ".join(_q19_branch_sql(*b) for b in _Q19_BRANCHES)
    return parse_expression(f"({branches}) AND {_Q19_COMMON_L}")


def q19_baseline(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    lineitem, part = catalog.get("lineitem"), catalog.get("part")
    mark = ctx.begin_query()
    l_rows = get_table(ctx, lineitem)
    p_rows = get_table(ctx, part)
    joined = hash_join(
        p_rows, part.schema.names, l_rows, lineitem.schema.names,
        "p_partkey", "l_partkey",
    )
    kept = filter_rows(joined.rows, joined.column_names, _q19_full_predicate())
    out = finish_output(kept.rows, kept.column_names, _Q19_OUTPUT)
    n_records = len(l_rows) + len(p_rows)
    n_fields = len(l_rows) * len(lineitem.schema) + len(p_rows) * len(part.schema)
    phase = phase_since(
        ctx, mark, "q19", streams=lineitem.partitions + part.partitions,
        server_cpu_seconds=joined.cpu_seconds + kept.cpu_seconds + out.cpu_seconds,
        ingest=(n_records, n_fields / max(n_records, 1)),
    )
    return ctx.finalize(mark, out.rows, out.column_names, [phase], strategy="q19 baseline")


def q19_optimized(ctx: CloudContext, catalog: Catalog) -> QueryExecution:
    """Push each side's part of the disjunction; finish exactly locally."""
    lineitem, part = catalog.get("lineitem"), catalog.get("part")
    qty_disjunction = " OR ".join(
        f"l_quantity BETWEEN {lo} AND {hi}" for _, _, (lo, hi), _ in _Q19_BRANCHES
    )
    l_where = f"{_Q19_COMMON_L} AND ({qty_disjunction})"
    p_where = " OR ".join(
        _q19_branch_sql(*b).replace(
            f" AND l_quantity BETWEEN {b[2][0]} AND {b[2][1]}", ""
        )
        for b in _Q19_BRANCHES
    )
    mark = ctx.begin_query()
    l_cols = ["l_partkey", "l_quantity", "l_extendedprice", "l_discount"]
    l_rows, _ = select_table(ctx, lineitem, projection_sql(l_cols, l_where))
    p_cols = ["p_partkey", "p_brand", "p_size", "p_container"]
    p_rows, _ = select_table(ctx, part, projection_sql(p_cols, p_where))
    joined = hash_join(p_rows, p_cols, l_rows, l_cols, "p_partkey", "l_partkey")
    # The common lineitem conjuncts were fully applied at S3; only the
    # per-branch (brand, container, quantity, size) combination still
    # needs an exact local check.
    residual = parse_expression(
        " OR ".join(_q19_branch_sql(*b) for b in _Q19_BRANCHES)
    )
    kept = filter_rows(joined.rows, joined.column_names, residual)
    out = finish_output(kept.rows, kept.column_names, _Q19_OUTPUT)
    n_records = len(l_rows) + len(p_rows)
    n_fields = len(l_rows) * len(l_cols) + len(p_rows) * len(p_cols)
    phase = phase_since(
        ctx, mark, "q19", streams=lineitem.partitions + part.partitions,
        server_cpu_seconds=joined.cpu_seconds + kept.cpu_seconds + out.cpu_seconds,
        ingest=(n_records, n_fields / max(n_records, 1)),
    )
    return ctx.finalize(mark, out.rows, out.column_names, [phase], strategy="q19 optimized")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

TPCH_QUERIES: dict[str, QueryVariants] = {
    "q1": QueryVariants("q1", q1_baseline, q1_optimized),
    "q3": QueryVariants("q3", q3_baseline, q3_optimized),
    "q6": QueryVariants("q6", q6_baseline, q6_optimized),
    "q14": QueryVariants("q14", q14_baseline, q14_optimized),
    "q17": QueryVariants("q17", q17_baseline, q17_optimized),
    "q19": QueryVariants("q19", q19_baseline, q19_optimized),
}
