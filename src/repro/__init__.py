"""PushdownDB reproduction - accelerating a DBMS using (simulated) S3 computation.

Reimplements the system and experiments of *PushdownDB: Accelerating a
DBMS using S3 Computation* (Yu et al., ICDE 2020) against a fully
simulated S3 + S3 Select substrate.

Typical entry points:

* :class:`repro.PushdownDB` - embedded database facade (load tables, run SQL);
* :mod:`repro.strategies` - the paper's pushdown operator algorithms;
* :mod:`repro.experiments` - one harness per paper figure/table.
"""

from repro.cloud.context import CloudContext, QueryExecution
from repro.cloud.perf import PAPER_PERF, PerfModel
from repro.cloud.pricing import PAPER_PRICING, CostBreakdown, Pricing
from repro.engine.catalog import Catalog, TableInfo, load_table
from repro.planner.database import PushdownDB
from repro.storage.schema import ColumnDef, TableSchema

__version__ = "1.0.0"

__all__ = [
    "CloudContext",
    "QueryExecution",
    "PerfModel",
    "PAPER_PERF",
    "Pricing",
    "PAPER_PRICING",
    "CostBreakdown",
    "Catalog",
    "TableInfo",
    "load_table",
    "PushdownDB",
    "TableSchema",
    "ColumnDef",
    "__version__",
]
