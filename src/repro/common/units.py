"""Byte / time / money unit helpers.

The cost model in the paper quotes prices per GB (decimal gigabyte, as AWS
bills) and per 1,000 requests.  Keeping the conversions in one place avoids
the classic GiB-vs-GB billing bug.
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024

SECONDS_PER_HOUR = 3600.0


def bytes_to_gb(n_bytes: int | float) -> float:
    """Convert a byte count to decimal gigabytes (AWS billing unit)."""
    return n_bytes / GB


def human_bytes(n_bytes: int | float) -> str:
    """Render a byte count for reports, e.g. ``1.25 GB``."""
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1000.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def human_seconds(seconds: float) -> str:
    """Render a duration for reports, e.g. ``1.24 s`` or ``312 ms``."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds < 1.0:
        return f"{seconds * 1000:.0f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def human_dollars(amount: float) -> str:
    """Render a dollar amount with enough precision for micro-costs."""
    if abs(amount) >= 0.01:
        return f"${amount:.4f}"
    return f"${amount:.6f}"
