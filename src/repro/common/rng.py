"""Deterministic random-number helpers.

All data generators and sampling strategies in the reproduction must be
reproducible run-to-run, so nothing in the library touches the global
``random`` state; everything derives from an explicit seed through here.
"""

from __future__ import annotations

import random

import numpy as np

#: Seed used by library components when the caller does not supply one.
DEFAULT_SEED = 20200214  # the paper's arXiv submission date


def py_rng(seed: int | None = None) -> random.Random:
    """Return a seeded stdlib ``random.Random`` instance."""
    return random.Random(DEFAULT_SEED if seed is None else seed)


def np_rng(seed: int | None = None) -> np.random.Generator:
    """Return a seeded numpy ``Generator`` (PCG64)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from a parent seed and a label path.

    Used so that, e.g., each TPC-H table gets an independent but stable
    stream regardless of generation order.
    """
    h = 1469598103934665603  # FNV-1a 64-bit offset basis
    for token in (seed, *labels):
        for byte in str(token).encode():
            h ^= byte
            h = (h * 1099511628211) % (1 << 64)
    return h % (1 << 63)
