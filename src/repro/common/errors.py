"""Exception hierarchy shared across the PushdownDB reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so error messages can point at the
    character where parsing failed.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class UnsupportedFeatureError(ReproError):
    """The query uses SQL that the targeted engine does not support.

    The S3 Select dialect is deliberately small (no joins, no group-by,
    no ORDER BY); the validator raises this error when a pushed-down
    query steps outside that subset, mirroring the real service's
    ``UnsupportedSqlFeature`` errors.
    """


class ExpressionLimitExceededError(ReproError):
    """An S3 Select SQL expression exceeded the 256 KB service limit.

    The paper (Section V-B1) relies on this limit: Bloom joins detect it
    and degrade the Bloom filter's false-positive rate, eventually
    falling back to a filtered join.
    """

    def __init__(self, size: int, limit: int):
        super().__init__(
            f"S3 Select expression is {size} bytes; the service limit is {limit} bytes"
        )
        self.size = size
        self.limit = limit


class NoSuchBucketError(ReproError):
    """A request referenced a bucket that does not exist."""

    def __init__(self, bucket: str):
        super().__init__(f"bucket does not exist: {bucket!r}")
        self.bucket = bucket


class NoSuchKeyError(ReproError):
    """A request referenced an object key that does not exist."""

    def __init__(self, bucket: str, key: str):
        super().__init__(f"object does not exist: {bucket!r}/{key!r}")
        self.bucket = bucket
        self.key = key


class InvalidRangeError(ReproError):
    """A byte-range GET asked for a range outside the object."""


class TypeMismatchError(ReproError):
    """An expression combined values of incompatible types."""


class PlanError(ReproError):
    """A query plan was malformed or could not be built."""


class CatalogError(ReproError):
    """A table referenced by a query is not registered in the catalog."""
