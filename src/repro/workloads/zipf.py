"""Zipfian distribution sampling (Gray et al., SIGMOD '94).

The paper's skewed group-by workload draws group membership from a
Zipfian distribution with parameter theta: theta = 0 is uniform, and at
theta = 1.3 "59% of rows belong to the four largest groups" — a property
the tests assert.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n_items: int, theta: float) -> np.ndarray:
    """Normalized probabilities ``p_i ∝ 1/i^theta`` for ranks 1..n."""
    if n_items < 1:
        raise ValueError(f"need at least one item, got {n_items}")
    if theta < 0:
        raise ValueError(f"theta must be >= 0, got {theta}")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-theta)
    return weights / weights.sum()


def zipf_sample(
    n_items: int, theta: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` item ranks (0-based) from Zipf(n_items, theta)."""
    weights = zipf_weights(n_items, theta)
    cumulative = np.cumsum(weights)
    cumulative[-1] = 1.0  # guard against float drift
    u = rng.random(size)
    return np.searchsorted(cumulative, u, side="right").astype(np.int64)


def head_mass(n_items: int, theta: float, head: int) -> float:
    """Probability mass of the ``head`` largest groups (sanity metric)."""
    weights = zipf_weights(n_items, theta)
    return float(weights[:head].sum())
