"""A deterministic pure-Python TPC-H ``dbgen``.

Generates all eight TPC-H tables with spec-shaped value distributions —
uniform order dates over 1992-01-01..1998-08-02, ``c_acctbal`` in
[-999.99, 9999.99], discounts in [0, 0.10], the Brand#MN / container /
type vocabularies, and so on — so the selectivities of every predicate
the paper's experiments sweep (``c_acctbal <= v``, ``o_orderdate < d``,
``l_shipdate`` ranges, brand/container filters) are proportionally
faithful at any scale factor.

The official dbgen's exact text corpus and RNG streams are not
reproduced; no experiment in the paper depends on comment text.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.common.rng import derive_seed, np_rng
from repro.storage.schema import TableSchema

# ----------------------------------------------------------------------
# schemas
# ----------------------------------------------------------------------

CUSTOMER_SCHEMA = TableSchema.of(
    "c_custkey:int", "c_name:str", "c_address:str", "c_nationkey:int",
    "c_phone:str", "c_acctbal:float", "c_mktsegment:str", "c_comment:str",
)

ORDERS_SCHEMA = TableSchema.of(
    "o_orderkey:int", "o_custkey:int", "o_orderstatus:str", "o_totalprice:float",
    "o_orderdate:date", "o_orderpriority:str", "o_clerk:str",
    "o_shippriority:int", "o_comment:str",
)

LINEITEM_SCHEMA = TableSchema.of(
    "l_orderkey:int", "l_partkey:int", "l_suppkey:int", "l_linenumber:int",
    "l_quantity:float", "l_extendedprice:float", "l_discount:float", "l_tax:float",
    "l_returnflag:str", "l_linestatus:str", "l_shipdate:date",
    "l_commitdate:date", "l_receiptdate:date", "l_shipinstruct:str",
    "l_shipmode:str", "l_comment:str",
)

PART_SCHEMA = TableSchema.of(
    "p_partkey:int", "p_name:str", "p_mfgr:str", "p_brand:str", "p_type:str",
    "p_size:int", "p_container:str", "p_retailprice:float", "p_comment:str",
)

SUPPLIER_SCHEMA = TableSchema.of(
    "s_suppkey:int", "s_name:str", "s_address:str", "s_nationkey:int",
    "s_phone:str", "s_acctbal:float", "s_comment:str",
)

PARTSUPP_SCHEMA = TableSchema.of(
    "ps_partkey:int", "ps_suppkey:int", "ps_availqty:int",
    "ps_supplycost:float", "ps_comment:str",
)

NATION_SCHEMA = TableSchema.of(
    "n_nationkey:int", "n_name:str", "n_regionkey:int", "n_comment:str",
)

REGION_SCHEMA = TableSchema.of("r_regionkey:int", "r_name:str", "r_comment:str")

TABLE_SCHEMAS = {
    "customer": CUSTOMER_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
    "part": PART_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
    "partsupp": PARTSUPP_SCHEMA,
    "nation": NATION_SCHEMA,
    "region": REGION_SCHEMA,
}

# ----------------------------------------------------------------------
# spec vocabularies
# ----------------------------------------------------------------------

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_INSTRUCT = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
CONTAINER_1 = ("SM", "LG", "MED", "JUMBO", "WRAP")
CONTAINER_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
TYPE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
P_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream",
)

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
_EPOCH_SPAN = (END_DATE - START_DATE).days


def _date_str(offset_days: int) -> str:
    return (START_DATE + datetime.timedelta(days=int(offset_days))).isoformat()


def _comment(rng, max_words: int = 6) -> str:
    n = int(rng.integers(2, max_words + 1))
    words = rng.choice(P_NAME_WORDS, size=n)
    return " ".join(words)


@dataclass(frozen=True)
class TpchSizes:
    """Row counts per table at a scale factor."""

    customers: int
    orders: int
    parts: int
    suppliers: int

    @classmethod
    def at(cls, scale_factor: float) -> "TpchSizes":
        return cls(
            customers=max(1, int(150_000 * scale_factor)),
            orders=max(1, int(1_500_000 * scale_factor)),
            parts=max(1, int(200_000 * scale_factor)),
            suppliers=max(1, int(10_000 * scale_factor)),
        )


class TpchGenerator:
    """Deterministic TPC-H data generator.

    >>> gen = TpchGenerator(scale_factor=0.001)
    >>> len(gen.customer()) == 150
    True
    """

    def __init__(self, scale_factor: float = 0.01, seed: int | None = None):
        if scale_factor <= 0:
            raise ValueError(f"scale factor must be positive, got {scale_factor}")
        self.scale_factor = scale_factor
        self.sizes = TpchSizes.at(scale_factor)
        self._seed = seed if seed is not None else 0
        self._cache: dict[str, list[tuple]] = {}

    def _rng(self, table: str):
        return np_rng(derive_seed(self._seed, "tpch", table, self.scale_factor))

    # ------------------------------------------------------------------
    def table(self, name: str) -> list[tuple]:
        """Rows of any TPC-H table, cached per generator."""
        if name not in self._cache:
            builder = getattr(self, name, None)
            if builder is None or name not in TABLE_SCHEMAS:
                raise ValueError(f"unknown TPC-H table {name!r}")
            return builder()
        return self._cache[name]

    def customer(self) -> list[tuple]:
        if "customer" in self._cache:
            return self._cache["customer"]
        rng = self._rng("customer")
        n = self.sizes.customers
        acctbal = rng.uniform(-999.99, 9999.99, n).round(2)
        nations = rng.integers(0, len(NATIONS), n)
        segments = rng.choice(SEGMENTS, n)
        rows = []
        for i in range(n):
            key = i + 1
            rows.append((
                key,
                f"Customer#{key:09d}",
                f"addr-{key}",
                int(nations[i]),
                f"{10 + int(nations[i])}-{key % 999:03d}-{key % 9999:04d}",
                float(acctbal[i]),
                str(segments[i]),
                _comment(rng),
            ))
        self._cache["customer"] = rows
        return rows

    def orders(self) -> list[tuple]:
        if "orders" in self._cache:
            return self._cache["orders"]
        rng = self._rng("orders")
        n = self.sizes.orders
        # Per spec only 2/3 of customers have orders.
        custkeys = rng.integers(1, max(self.sizes.customers, 2), n)
        dates = rng.integers(0, _EPOCH_SPAN - 150, n)
        totals = rng.uniform(850.0, 450_000.0, n).round(2)
        priorities = rng.choice(PRIORITIES, n)
        statuses = rng.choice(("O", "F", "P"), n, p=(0.49, 0.49, 0.02))
        rows = []
        for i in range(n):
            key = i + 1
            rows.append((
                key,
                int(custkeys[i]),
                str(statuses[i]),
                float(totals[i]),
                _date_str(dates[i]),
                str(priorities[i]),
                f"Clerk#{int(rng.integers(1, 1000)):09d}",
                0,
                _comment(rng),
            ))
        self._cache["orders"] = rows
        return rows

    def lineitem(self) -> list[tuple]:
        if "lineitem" in self._cache:
            return self._cache["lineitem"]
        orders = self.orders()
        rng = self._rng("lineitem")
        n_parts = self.sizes.parts
        n_supps = self.sizes.suppliers
        rows = []
        line_counts = np_rng(derive_seed(self._seed, "tpch", "linecount")).integers(
            1, 8, len(orders)
        )
        for (o_key, _, _, _, o_date, *_), n_lines in zip(orders, line_counts):
            base = datetime.date.fromisoformat(o_date)
            for line_no in range(1, int(n_lines) + 1):
                partkey = int(rng.integers(1, n_parts + 1))
                quantity = float(rng.integers(1, 51))
                retail = _retail_price(partkey)
                extended = round(quantity * retail, 2)
                ship = base + datetime.timedelta(days=int(rng.integers(1, 122)))
                commit = base + datetime.timedelta(days=int(rng.integers(30, 91)))
                receipt = ship + datetime.timedelta(days=int(rng.integers(1, 31)))
                returnflag = "N" if ship > datetime.date(1995, 6, 17) else str(
                    rng.choice(("R", "A"))
                )
                rows.append((
                    o_key,
                    partkey,
                    int(rng.integers(1, n_supps + 1)),
                    line_no,
                    quantity,
                    extended,
                    float(rng.integers(0, 11)) / 100.0,
                    float(rng.integers(0, 9)) / 100.0,
                    returnflag,
                    "F" if ship <= datetime.date(1995, 6, 17) else "O",
                    ship.isoformat(),
                    commit.isoformat(),
                    receipt.isoformat(),
                    str(rng.choice(SHIP_INSTRUCT)),
                    str(rng.choice(SHIP_MODES)),
                    _comment(rng, 3),
                ))
        self._cache["lineitem"] = rows
        return rows

    def part(self) -> list[tuple]:
        if "part" in self._cache:
            return self._cache["part"]
        rng = self._rng("part")
        n = self.sizes.parts
        rows = []
        for i in range(n):
            key = i + 1
            m = int(rng.integers(1, 6))
            b = int(rng.integers(1, 6))
            p_type = (
                f"{rng.choice(TYPE_1)} {rng.choice(TYPE_2)} {rng.choice(TYPE_3)}"
            )
            container = f"{rng.choice(CONTAINER_1)} {rng.choice(CONTAINER_2)}"
            name = " ".join(rng.choice(P_NAME_WORDS, size=5))
            rows.append((
                key,
                name,
                f"Manufacturer#{m}",
                f"Brand#{m}{b}",
                p_type,
                int(rng.integers(1, 51)),
                container,
                _retail_price(key),
                _comment(rng),
            ))
        self._cache["part"] = rows
        return rows

    def supplier(self) -> list[tuple]:
        if "supplier" in self._cache:
            return self._cache["supplier"]
        rng = self._rng("supplier")
        n = self.sizes.suppliers
        rows = []
        for i in range(n):
            key = i + 1
            nation = int(rng.integers(0, len(NATIONS)))
            rows.append((
                key,
                f"Supplier#{key:09d}",
                f"s-addr-{key}",
                nation,
                f"{10 + nation}-{key % 999:03d}-{key % 9999:04d}",
                float(rng.uniform(-999.99, 9999.99).__round__(2)),
                _comment(rng),
            ))
        self._cache["supplier"] = rows
        return rows

    def partsupp(self) -> list[tuple]:
        if "partsupp" in self._cache:
            return self._cache["partsupp"]
        rng = self._rng("partsupp")
        n_supps = self.sizes.suppliers
        rows = []
        for partkey in range(1, self.sizes.parts + 1):
            for j in range(4):
                suppkey = ((partkey + j * (n_supps // 4 + 1)) % n_supps) + 1
                rows.append((
                    partkey,
                    suppkey,
                    int(rng.integers(1, 10_000)),
                    float(rng.uniform(1.0, 1000.0).__round__(2)),
                    _comment(rng, 3),
                ))
        self._cache["partsupp"] = rows
        return rows

    def nation(self) -> list[tuple]:
        return [
            (i, name, region, f"nation {name.lower()}")
            for i, (name, region) in enumerate(NATIONS)
        ]

    def region(self) -> list[tuple]:
        return [(i, name, f"region {name.lower()}") for i, name in enumerate(REGIONS)]


def _retail_price(partkey: int) -> float:
    """Spec formula: 90000 + ((partkey/10) % 20001) + 100*(partkey % 1000), /100."""
    return (90_000 + ((partkey // 10) % 20_001) + 100 * (partkey % 1_000)) / 100.0
