"""Synthetic tables for the group-by and Parquet experiments.

Three generators mirroring Sections VI-C and IX:

* :func:`uniform_groupby_table` — 20 columns: 10 group-ID columns where
  column ``g{i}`` has ``2^(i+1)`` uniformly sized groups, plus 10 float
  value columns (Figure 5's workload);
* :func:`skewed_groupby_table` — 10 group columns with 100 groups each,
  group sizes Zipfian(theta), plus 10 float value columns (Figures 6-7);
* :func:`float_table` — N float columns of random values rounded to four
  decimals (Figure 11's CSV-vs-Parquet tables).
"""

from __future__ import annotations

from repro.common.rng import derive_seed, np_rng
from repro.storage.schema import TableSchema
from repro.workloads.zipf import zipf_sample

DEFAULT_GROUP_COLUMNS = 10
DEFAULT_VALUE_COLUMNS = 10


def groupby_schema(
    group_columns: int = DEFAULT_GROUP_COLUMNS,
    value_columns: int = DEFAULT_VALUE_COLUMNS,
) -> TableSchema:
    """``g0..g{G-1}`` int group IDs followed by ``v0..v{V-1}`` floats."""
    specs = [f"g{i}:int" for i in range(group_columns)]
    specs += [f"v{i}:float" for i in range(value_columns)]
    return TableSchema.of(*specs)


def uniform_groupby_table(
    num_rows: int,
    group_columns: int = DEFAULT_GROUP_COLUMNS,
    value_columns: int = DEFAULT_VALUE_COLUMNS,
    seed: int | None = None,
) -> list[tuple]:
    """Uniform group sizes; column ``g{i}`` has ``2^(i+1)`` groups."""
    rng = np_rng(derive_seed(seed or 0, "uniform-groupby", num_rows))
    group_cols = [
        rng.integers(0, 2 ** (i + 1), num_rows) for i in range(group_columns)
    ]
    value_cols = [
        rng.uniform(0.0, 1000.0, num_rows).round(4) for _ in range(value_columns)
    ]
    return _zip_columns(group_cols, value_cols, num_rows)


def skewed_groupby_table(
    num_rows: int,
    theta: float,
    groups_per_column: int = 100,
    group_columns: int = DEFAULT_GROUP_COLUMNS,
    value_columns: int = DEFAULT_VALUE_COLUMNS,
    seed: int | None = None,
) -> list[tuple]:
    """Zipfian(theta) group sizes; theta=0 degenerates to uniform."""
    rng = np_rng(derive_seed(seed or 0, "skewed-groupby", num_rows, theta))
    group_cols = [
        zipf_sample(groups_per_column, theta, num_rows, rng)
        for _ in range(group_columns)
    ]
    value_cols = [
        rng.uniform(0.0, 1000.0, num_rows).round(4) for _ in range(value_columns)
    ]
    return _zip_columns(group_cols, value_cols, num_rows)


FILTER_SCHEMA = TableSchema.of(
    "key:int",
    *[f"p{i}:float" for i in range(6)],
    "tag:str",
)


def filter_table(num_rows: int, seed: int | None = None) -> list[tuple]:
    """Table for the Figure 1 filter experiment.

    ``key`` is a random permutation of ``0..num_rows-1``, so the
    predicate ``key < c`` matches exactly ``c`` rows — selectivity is
    exact and index lookups return a known number of records.  Payload
    columns pad rows to roughly lineitem width.
    """
    rng = np_rng(derive_seed(seed or 0, "filter-table", num_rows))
    keys = rng.permutation(num_rows)
    payload = [rng.uniform(0, 1e6, num_rows).round(4) for _ in range(6)]
    tags = [f"row-{int(k):08d}" for k in keys]
    rows = []
    for r in range(num_rows):
        rows.append(
            (int(keys[r]), *(float(c[r]) for c in payload), tags[r])
        )
    return rows


def float_schema(num_columns: int) -> TableSchema:
    return TableSchema.of(*[f"f{i}:float" for i in range(num_columns)])


def float_table(
    num_rows: int, num_columns: int, seed: int | None = None
) -> list[tuple]:
    """Random floats rounded to four decimals (paper Section IX)."""
    rng = np_rng(derive_seed(seed or 0, "float-table", num_rows, num_columns))
    cols = [rng.uniform(0.0, 1.0, num_rows).round(4) for _ in range(num_columns)]
    return _zip_columns([], cols, num_rows)


def _zip_columns(int_cols, float_cols, num_rows: int) -> list[tuple]:
    rows = []
    for r in range(num_rows):
        rows.append(
            tuple(int(c[r]) for c in int_cols)
            + tuple(float(c[r]) for c in float_cols)
        )
    return rows
