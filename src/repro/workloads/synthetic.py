"""Synthetic tables for the group-by and Parquet experiments.

Three generators mirroring Sections VI-C and IX:

* :func:`uniform_groupby_table` — 20 columns: 10 group-ID columns where
  column ``g{i}`` has ``2^(i+1)`` uniformly sized groups, plus 10 float
  value columns (Figure 5's workload);
* :func:`skewed_groupby_table` — 10 group columns with 100 groups each,
  group sizes Zipfian(theta), plus 10 float value columns (Figures 6-7);
* :func:`float_table` — N float columns of random values rounded to four
  decimals (Figure 11's CSV-vs-Parquet tables).
"""

from __future__ import annotations

from repro.common.rng import derive_seed, np_rng
from repro.storage.schema import TableSchema
from repro.workloads.zipf import zipf_sample

DEFAULT_GROUP_COLUMNS = 10
DEFAULT_VALUE_COLUMNS = 10


def groupby_schema(
    group_columns: int = DEFAULT_GROUP_COLUMNS,
    value_columns: int = DEFAULT_VALUE_COLUMNS,
) -> TableSchema:
    """``g0..g{G-1}`` int group IDs followed by ``v0..v{V-1}`` floats."""
    specs = [f"g{i}:int" for i in range(group_columns)]
    specs += [f"v{i}:float" for i in range(value_columns)]
    return TableSchema.of(*specs)


def uniform_groupby_table(
    num_rows: int,
    group_columns: int = DEFAULT_GROUP_COLUMNS,
    value_columns: int = DEFAULT_VALUE_COLUMNS,
    seed: int | None = None,
) -> list[tuple]:
    """Uniform group sizes; column ``g{i}`` has ``2^(i+1)`` groups."""
    rng = np_rng(derive_seed(seed or 0, "uniform-groupby", num_rows))
    group_cols = [
        rng.integers(0, 2 ** (i + 1), num_rows) for i in range(group_columns)
    ]
    value_cols = [
        rng.uniform(0.0, 1000.0, num_rows).round(4) for _ in range(value_columns)
    ]
    return _zip_columns(group_cols, value_cols, num_rows)


def skewed_groupby_table(
    num_rows: int,
    theta: float,
    groups_per_column: int = 100,
    group_columns: int = DEFAULT_GROUP_COLUMNS,
    value_columns: int = DEFAULT_VALUE_COLUMNS,
    seed: int | None = None,
) -> list[tuple]:
    """Zipfian(theta) group sizes; theta=0 degenerates to uniform."""
    rng = np_rng(derive_seed(seed or 0, "skewed-groupby", num_rows, theta))
    group_cols = [
        zipf_sample(groups_per_column, theta, num_rows, rng)
        for _ in range(group_columns)
    ]
    value_cols = [
        rng.uniform(0.0, 1000.0, num_rows).round(4) for _ in range(value_columns)
    ]
    return _zip_columns(group_cols, value_cols, num_rows)


FILTER_SCHEMA = TableSchema.of(
    "key:int",
    *[f"p{i}:float" for i in range(6)],
    "tag:str",
)


def filter_table(num_rows: int, seed: int | None = None) -> list[tuple]:
    """Table for the Figure 1 filter experiment.

    ``key`` is a random permutation of ``0..num_rows-1``, so the
    predicate ``key < c`` matches exactly ``c`` rows — selectivity is
    exact and index lookups return a known number of records.  Payload
    columns pad rows to roughly lineitem width.
    """
    rng = np_rng(derive_seed(seed or 0, "filter-table", num_rows))
    keys = rng.permutation(num_rows)
    payload = [rng.uniform(0, 1e6, num_rows).round(4) for _ in range(6)]
    tags = [f"row-{int(k):08d}" for k in keys]
    rows = []
    for r in range(num_rows):
        rows.append(
            (int(keys[r]), *(float(c[r]) for c in payload), tags[r])
        )
    return rows


def clustered_filter_table(num_rows: int, seed: int | None = None) -> list[tuple]:
    """:func:`filter_table` rows sorted by ``key`` (the fig15 workload).

    Sorting makes each contiguous partition slice cover a tight, disjoint
    ``key`` interval, so a range predicate's zone-map refutation can skip
    whole partitions — the partition-clustered layout real warehouses get
    from ingest-ordered or sort-keyed data.  Row *contents* are identical
    to the unsorted table.
    """
    return sorted(filter_table(num_rows, seed=seed), key=lambda r: r[0])


def float_schema(num_columns: int) -> TableSchema:
    return TableSchema.of(*[f"f{i}:float" for i in range(num_columns)])


def float_table(
    num_rows: int, num_columns: int, seed: int | None = None
) -> list[tuple]:
    """Random floats rounded to four decimals (paper Section IX)."""
    rng = np_rng(derive_seed(seed or 0, "float-table", num_rows, num_columns))
    cols = [rng.uniform(0.0, 1.0, num_rows).round(4) for _ in range(num_columns)]
    return _zip_columns([], cols, num_rows)


def _zip_columns(int_cols, float_cols, num_rows: int) -> list[tuple]:
    rows = []
    for r in range(num_rows):
        rows.append(
            tuple(int(c[r]) for c in int_cols)
            + tuple(float(c[r]) for c in float_cols)
        )
    return rows


# ----------------------------------------------------------------------
# snowflake join workload (fig13)
# ----------------------------------------------------------------------

#: Schemas of the fig13 snowflake: a fact table referencing two
#: dimensions, each dimension referencing a filtered sub-dimension.
SNOWFLAKE_SCHEMAS = {
    "fact": TableSchema.of("f_d1:int", "f_d2:int", "f_v:float",
                           *[f"f_p{i}:float" for i in range(4)]),
    "dim1": TableSchema.of("d1_id:int", "d1_s1:int", "d1_pad:str"),
    "sub1": TableSchema.of("s1_id:int", "s1_attr:int", "s1_pad:str"),
    "dim2": TableSchema.of("d2_id:int", "d2_s2:int", "d2_pad:str"),
    "sub2": TableSchema.of("s2_id:int", "s2_attr:int", "s2_pad:str"),
}


def snowflake_tables(
    fact_rows: int = 9000, seed: int | None = None
) -> dict[str, list[tuple]]:
    """Rows for the fig13 snowflake join (fact + 2 dims + 2 sub-dims).

    Both branches hang selective filters on their *sub*-dimension
    (``s1_attr`` / ``s2_attr`` are uniform in ``0..99``, so ``< t``
    keeps ``t`` percent), which is the shape where bushy plans beat
    every left-deep order: each dimension scan can be Bloom-reduced by
    its own filtered sub-dimension, while a left-deep chain can only
    bloom the second branch's dimension from the (unselective) fact-side
    intermediate.  The dimensions carry string padding so an unreduced
    dimension scan visibly costs bytes.
    """
    rng = np_rng(derive_seed(seed or 0, "snowflake", fact_rows))
    n_d1 = max(fact_rows // 10, 8)
    n_d2 = max(fact_rows // 6, 8)
    n_s1 = max(fact_rows // 40, 4)
    n_s2 = max(fact_rows // 30, 4)
    d1_refs = rng.integers(0, n_d1, fact_rows)
    d2_refs = rng.integers(0, n_d2, fact_rows)
    values = rng.uniform(0.0, 1000.0, fact_rows).round(4)
    payload = rng.uniform(0.0, 1e6, (fact_rows, 4)).round(4)
    fact = [
        (
            int(d1_refs[r]), int(d2_refs[r]), float(values[r]),
            *(float(v) for v in payload[r]),
        )
        for r in range(fact_rows)
    ]

    def dim(n, sub_n, prefix):
        return [
            (i, int(rng.integers(0, sub_n)), f"{prefix}-pad-{i:06d}")
            for i in range(n)
        ]

    def sub(n, prefix):
        return [
            (i, int(rng.integers(0, 100)), f"{prefix}-pad-{i:06d}")
            for i in range(n)
        ]

    return {
        "fact": fact,
        "dim1": dim(n_d1, n_s1, "d1"),
        "sub1": sub(n_s1, "s1"),
        "dim2": dim(n_d2, n_s2, "d2"),
        "sub2": sub(n_s2, "s2"),
    }


# ----------------------------------------------------------------------
# correlated-predicate star workload (fig14)
# ----------------------------------------------------------------------

#: Schemas of the fig14 star: a fact table referencing three dimensions.
#: ``dima`` carries two *correlated* attribute columns — the adversarial
#: input for System-R's independence assumption.
CORRELATED_STAR_SCHEMAS = {
    "fact": TableSchema.of(
        "f_a:int", "f_b:int", "f_c:int", "f_v:float",
        *[f"f_p{i}:float" for i in range(3)],
    ),
    "dima": TableSchema.of("a_id:int", "a_x:int", "a_y:int", "a_pad:str"),
    "dimb": TableSchema.of("b_id:int", "b_sel:int", "b_pad:str"),
    "dimc": TableSchema.of("c_id:int", "c_w:int", "c_pad:str"),
}


def correlated_star_tables(
    fact_rows: int = 8000, seed: int | None = None
) -> dict[str, list[tuple]]:
    """Rows for the fig14 adaptive-execution star join.

    ``dima.a_x`` and ``dima.a_y`` are uniform in ``0..99`` and (almost)
    perfectly correlated: ``a_y`` is ``a_x`` plus or minus at most 1.
    A conjunction ``a_x < t AND a_y < t`` therefore keeps about ``t``
    percent of the rows, while a System-R estimator multiplying
    per-conjunct selectivities predicts ``(t/100)^2`` — the classic
    quadratic underestimate that makes a cost-based search join ``dima``
    first when it should not.  ``dimb`` carries an *accurately*
    estimable uniform filter column, and ``dimc`` is an unfiltered
    bystander that keeps the remaining search space non-trivial after
    the first materialization.
    """
    rng = np_rng(derive_seed(seed or 0, "correlated-star", fact_rows))
    n_a = max(fact_rows // 5, 8)
    n_b = max(fact_rows // 6, 8)
    n_c = max(fact_rows // 8, 8)
    a_refs = rng.integers(0, n_a, fact_rows)
    b_refs = rng.integers(0, n_b, fact_rows)
    c_refs = rng.integers(0, n_c, fact_rows)
    values = rng.uniform(0.0, 1000.0, fact_rows).round(4)
    payload = rng.uniform(0.0, 1e6, (fact_rows, 3)).round(4)
    fact = [
        (
            int(a_refs[r]), int(b_refs[r]), int(c_refs[r]), float(values[r]),
            *(float(v) for v in payload[r]),
        )
        for r in range(fact_rows)
    ]
    a_x = rng.integers(0, 100, n_a)
    a_noise = rng.integers(-1, 2, n_a)
    dima = [
        (
            i,
            int(a_x[i]),
            int(min(max(a_x[i] + a_noise[i], 0), 99)),
            f"a-pad-{i:06d}",
        )
        for i in range(n_a)
    ]
    dimb = [
        (i, int(rng.integers(0, 100)), f"b-pad-{i:06d}") for i in range(n_b)
    ]
    dimc = [
        (i, int(rng.integers(0, 100)), f"c-pad-{i:06d}") for i in range(n_c)
    ]
    return {"fact": fact, "dima": dima, "dimb": dimb, "dimc": dimc}
