"""Command-line interface: ``python -m repro <command>``.

Four subcommands:

* ``experiment fig1 [fig5 ...]`` — run paper-figure harnesses and print
  their tables (``all`` runs everything; sizes match the benchmarks);
* ``query "<SQL>"`` — load a TPC-H dataset and run one SQL statement in
  both baseline and optimized mode, with an execution report;
* ``explain "<SQL>"`` — the optimizer's EXPLAIN report (candidate
  strategies, join-order table, annotated physical plan) without
  executing anything;
* ``tables`` — list the TPC-H tables and sizes at a scale factor.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.units import human_bytes, human_dollars, human_seconds


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.cloud.context import set_default_pipeline
    from repro.experiments import ALL_EXPERIMENTS

    set_default_pipeline(workers=args.workers, batch_size=args.batch_size)
    names = list(ALL_EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    collected = {}
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        print(result.to_table())
        print()
        collected[name] = result
    if args.json is not None:
        import json

        payload = {
            name: {"title": r.title, "rows": r.rows, "notes": r.notes}
            for name, r in collected.items()
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    # Differential experiments carry a matched count; a shortfall is a
    # real failure CI must see, not just a table cell.
    for name, r in collected.items():
        matched = r.notes.get("matched")
        if matched is not None:
            done, _, want = str(matched).partition("/")
            if done != want:
                print(f"{name}: only {matched} differential checks matched")
                return 1
    return 0


def _load_tpch_db(args: argparse.Namespace):
    from repro import PushdownDB

    from repro.workloads.tpch import TABLE_SCHEMAS, TpchGenerator

    gen = TpchGenerator(scale_factor=args.scale_factor)
    db = PushdownDB(
        workers=getattr(args, "workers", None),
        batch_size=getattr(args, "batch_size", None),
        adaptive_threshold=getattr(args, "adaptive_threshold", None),
        cache_bytes=getattr(args, "cache_bytes", None) or 0,
    )
    for table in ("customer", "orders", "lineitem", "part"):
        db.load_table(table, gen.table(table), TABLE_SCHEMAS[table])
    db.calibrate_to_paper_scale()
    return db


def _cmd_query(args: argparse.Namespace) -> int:
    db = _load_tpch_db(args)

    strategy = args.strategy if args.strategy is not None else args.mode
    if args.compare:
        # Compare the two fixed plans; when auto was asked for, run it
        # too so its EXPLAIN report appears alongside the measurements.
        modes = ("baseline", "optimized") + (("auto",) if strategy == "auto" else ())
    else:
        modes = (strategy,)
    for mode in modes:
        execution = db.execute(args.sql, mode=mode)
        print(f"--- {mode} ---")
        # Render the optimizer's candidate table as its own block rather
        # than as a raw dict inside the execution report.
        summary = execution.details.pop("optimizer", None)
        if summary is not None:
            from repro.optimizer.chooser import render_choice_summary

            print(render_choice_summary(summary, "sql"))
        print(execution.explain(db.ctx.perf))
        for row in execution.rows[: args.max_rows]:
            print(" ", row)
        if len(execution.rows) > args.max_rows:
            print(f"  ... {len(execution.rows) - args.max_rows} more row(s)")
        print()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    db = _load_tpch_db(args)
    print(db.explain(args.sql))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.workloads.tpch import TABLE_SCHEMAS, TpchGenerator
    from repro.storage.csvcodec import encode_table

    gen = TpchGenerator(scale_factor=args.scale_factor)
    print(f"TPC-H at scale factor {args.scale_factor}:")
    for name, schema in TABLE_SCHEMAS.items():
        rows = gen.table(name)
        data, _ = encode_table(rows)
        print(f"  {name:9s} {len(rows):>9} rows  {human_bytes(len(data)):>10}"
              f"  ({len(schema)} columns)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PushdownDB reproduction (ICDE 2020) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_int(text: str) -> int:
        value = int(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"must be a positive integer, got {text}"
            )
        return value

    def non_negative_int(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"must be a non-negative integer, got {text}"
            )
        return value

    def add_pipeline_knobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=positive_int, default=None, metavar="N",
            help="concurrent partition-scan requests (default: serial);"
                 " affects wall-clock only, never results or cost",
        )
        p.add_argument(
            "--batch-size", type=positive_int, default=None, metavar="ROWS",
            help="rows per RecordBatch in the streaming executor",
        )

    def add_cache_knob(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-bytes", type=non_negative_int, default=None,
            metavar="BYTES",
            help="semantic result-cache budget for the session; repeated"
                 " or subsumed pushed scans answer from memory with zero"
                 " metered requests (default 0: disabled)",
        )

    # The valid experiment names come from the registry itself, so new
    # figures can never go stale in this help string.
    from repro.experiments import ALL_EXPERIMENTS

    p_exp = sub.add_parser("experiment", help="run paper-figure experiments")
    p_exp.add_argument(
        "names", nargs="+",
        help=f"{', '.join(ALL_EXPERIMENTS)}, or 'all'",
    )
    p_exp.add_argument(
        "--json", default=None, metavar="PATH",
        help="also dump every experiment's rows and notes as JSON"
             " (the CI artifact for the TPC-H differential suite)",
    )
    add_pipeline_knobs(p_exp)
    p_exp.set_defaults(fn=_cmd_experiment)

    modes = ("baseline", "optimized", "auto", "adaptive")
    p_query = sub.add_parser("query", help="run SQL over a TPC-H dataset")
    p_query.add_argument("sql")
    p_query.add_argument("--scale-factor", type=float, default=0.005)
    p_query.add_argument(
        "--strategy", choices=modes, default=None,
        help="physical plan: 'baseline' loads whole tables with GETs,"
             " 'optimized' pushes work into S3 Select, 'auto' lets the"
             " cost-based optimizer pick from per-candidate estimates"
             " and prints its EXPLAIN report, 'adaptive' re-plans"
             " misestimated joins mid-flight (default: optimized)",
    )
    p_query.add_argument("--mode", choices=modes,
                         default="optimized",
                         help="deprecated alias for --strategy")
    p_query.add_argument("--compare", action="store_true",
                         help="run both modes and show both reports")
    p_query.add_argument("--max-rows", type=int, default=10)
    def q_error_bound(text: str) -> float:
        value = float(text)
        if value < 1.0:
            raise argparse.ArgumentTypeError(
                f"a Q-error bound must be >= 1.0, got {text}"
            )
        return value

    p_query.add_argument(
        "--adaptive-threshold", type=q_error_bound, default=None, metavar="Q",
        help="Q-error a completed hash build may reach before an"
             " adaptive execution re-plans the remaining join tree"
             " (default 2.0; only used with --strategy adaptive)",
    )
    add_pipeline_knobs(p_query)
    add_cache_knob(p_query)
    p_query.set_defaults(fn=_cmd_query)

    p_explain = sub.add_parser(
        "explain",
        help="print the optimizer's EXPLAIN report without executing",
    )
    p_explain.add_argument("sql")
    p_explain.add_argument("--scale-factor", type=float, default=0.005)
    add_pipeline_knobs(p_explain)
    add_cache_knob(p_explain)
    p_explain.set_defaults(fn=_cmd_explain)

    p_tables = sub.add_parser("tables", help="show TPC-H table sizes")
    p_tables.add_argument("--scale-factor", type=float, default=0.01)
    p_tables.set_defaults(fn=_cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
