#!/usr/bin/env python3
"""Walk through the paper's three join strategies (Section V).

Runs the paper's synthetic customer ⋈ orders query under the baseline,
filtered, and Bloom join strategies, demonstrates the Bloom join's
256 KB degradation path by shrinking the allowed expression budget, and
finishes with a 3-table chain (customer ⋈ orders ⋈ lineitem) planned by
the cost-based join-order search.

Run:  python examples/join_strategies.py
"""

from repro.bloom.filter import BloomFilter, build_bloom_filter_within_limit
from repro.cloud.context import CloudContext
from repro.common.units import human_bytes, human_dollars, human_seconds
from repro.engine.catalog import Catalog
from repro.queries.common import items
from repro.queries.dataset import load_tpch
from repro.sqlparser.parser import parse_expression
from repro.strategies.join import (
    JoinQuery,
    baseline_join,
    bloom_join,
    filtered_join,
)


def main() -> None:
    ctx = CloudContext()
    catalog = Catalog()
    print("Loading customer + orders (scale factor 0.01) ...")
    load_tpch(ctx, catalog, 0.01, tables=("customer", "orders"))
    data_bytes = sum(catalog.get(t).total_bytes for t in ("customer", "orders"))
    ctx.calibrate_to_paper_scale(data_bytes, 2e9)  # the tables' paper share

    query = JoinQuery(
        build_table="customer",
        probe_table="orders",
        build_key="c_custkey",
        probe_key="o_custkey",
        build_predicate=parse_expression("c_acctbal <= -950"),
        build_projection=["c_custkey"],
        probe_projection=["o_custkey", "o_totalprice"],
        output=items("SUM(o_totalprice) AS total"),
    )

    print("\nSELECT SUM(o_totalprice) FROM customer, orders")
    print("WHERE o_custkey = c_custkey AND c_acctbal <= -950\n")
    for name, strategy in (
        ("baseline join", baseline_join),
        ("filtered join", filtered_join),
        ("bloom join", bloom_join),
    ):
        execution = strategy(ctx, catalog, query)
        moved = execution.bytes_returned + execution.bytes_transferred
        print(f"{name:14s} {human_seconds(execution.runtime_seconds):>9}"
              f"  {human_dollars(execution.cost.total)}"
              f"  data to server: {human_bytes(moved):>10}"
              f"  result: {execution.rows[0][0]:.2f}")
        if execution.details:
            interesting = {k: v for k, v in execution.details.items()
                           if k in ("achieved_fpr", "bloom_bits", "bloom_hashes",
                                    "probe_rows_returned")}
            print(f"{'':14s} details: {interesting}")

    # ------------------------------------------------------------------
    # What the Bloom filter actually ships to S3.
    # ------------------------------------------------------------------
    print("\nThe SQL a Bloom join pushes into S3 Select (truncated):")
    bloom = BloomFilter.build([3, 17, 99, 120], fpr=0.01, seed=1)
    predicate = bloom.to_sql_predicate("o_custkey")
    print(" ", predicate[:150], "...")

    # ------------------------------------------------------------------
    # The 256 KB degradation path (Section V-B1).
    # ------------------------------------------------------------------
    print("\nDegradation under the 256 KB expression limit:")
    keys = list(range(20_000))
    for limit in (256 * 1024, 64 * 1024, 2 * 1024):
        outcome = build_bloom_filter_within_limit(
            keys, 0.01, "o_custkey", limit_bytes=limit, seed=1
        )
        status = ("no filter (fall back to serial filtered join)"
                  if outcome.bloom is None
                  else f"fpr {outcome.achieved_fpr:g}, "
                       f"{outcome.bloom.num_bits} bits, "
                       f"{outcome.bloom.num_hashes} hashes")
        print(f"  limit {human_bytes(limit):>9}: tried {outcome.attempts} -> {status}")

    # ------------------------------------------------------------------
    # Three tables: the cost-based join-order search picks the chain.
    # ------------------------------------------------------------------
    from repro.planner.database import PushdownDB
    from repro.workloads.tpch import TABLE_SCHEMAS, TpchGenerator

    print("\nThree-way join through the N-way planner:")
    db = PushdownDB()
    gen = TpchGenerator(scale_factor=0.005)
    for table in ("customer", "orders", "lineitem"):
        db.load_table(table, gen.table(table), TABLE_SCHEMAS[table])
    db.calibrate_to_paper_scale()

    sql = (
        "SELECT c_mktsegment, SUM(l_extendedprice) AS revenue"
        " FROM customer, orders, lineitem"
        " WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
        " AND o_orderdate < '1995-01-01'"
        " GROUP BY c_mktsegment ORDER BY c_mktsegment"
    )
    print(f"\n{sql}\n")
    # EXPLAIN shows baseline-vs-optimized, every join tree the search
    # considered with predicted rows / runtime / cost, and the picked
    # mode's physical operator tree with per-node est_rows / est_cost.
    print(db.explain(sql))
    execution = db.execute(sql, mode="auto")
    print(f"\nexecuted as: {execution.strategy}")
    print(f"runtime {human_seconds(execution.runtime_seconds)},"
          f" cost {human_dollars(execution.cost.total)}")
    for row in execution.rows:
        print(f"  {row[0]:<12} {row[1]:>14.2f}")

    # The executed plan records per-node observed cardinalities, so the
    # estimate-vs-actual report (with Q-error columns) comes for free.
    from repro.planner.physical import render_execution_report

    print()
    print(render_execution_report(execution))


if __name__ == "__main__":
    main()
