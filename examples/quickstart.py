#!/usr/bin/env python3
"""Quickstart: load TPC-H tables into PushdownDB and run SQL.

Shows the library's front door: the :class:`repro.PushdownDB` facade.
Every query runs twice — once as the no-pushdown baseline (GET whole
tables, compute locally) and once with the paper's S3 Select pushdown —
and prints simulated runtime and dollar cost for both.

The facade also exposes the streaming-pipeline knobs:

* ``workers`` — how many partition scans run concurrently.  Results,
  bytes scanned, and simulated cost are identical for any setting; only
  real wall-clock changes (per-partition requests overlap).
* ``batch_size`` — rows per RecordBatch flowing through the local
  operators; queries stream batches end to end instead of materializing
  whole tables, so a ``LIMIT`` stops parsing early.

Beyond the fixed ``baseline`` / ``optimized`` modes there is
``mode="auto"``: the cost-based optimizer prices every candidate plan
from table statistics (collected at load time) and runs whichever it
predicts cheapest; ``db.explain(sql)`` prints the per-candidate table
without executing anything.  The CLI spelling is
``python -m repro query "<SQL>" --strategy auto``.

Run:  python examples/quickstart.py
"""

import time

from repro import PushdownDB
from repro.common.units import human_dollars, human_seconds
from repro.workloads.tpch import (
    CUSTOMER_SCHEMA,
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    TpchGenerator,
)

QUERIES = [
    # TPC-H Q6: entirely inside the S3 Select dialect -> fully pushed.
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem"
    " WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'"
    " AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
    # Group-by with a local tail.
    "SELECT l_returnflag, SUM(l_quantity) AS sum_qty, COUNT(*) AS n"
    " FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
    # Top-K.
    "SELECT l_orderkey, l_extendedprice FROM lineitem"
    " ORDER BY l_extendedprice DESC LIMIT 5",
    # Equi-join: the optimized plan ships a Bloom filter to S3.
    "SELECT SUM(o_totalprice) AS total FROM customer, orders"
    " WHERE c_custkey = o_custkey AND c_acctbal <= -900",
]


def main() -> None:
    print("Generating TPC-H data (scale factor 0.01) ...")
    gen = TpchGenerator(scale_factor=0.01)
    # workers=4: scan each table's 16 partitions four at a time;
    # batch_size=2048: RecordBatch granularity of the local operators.
    db = PushdownDB(workers=4, batch_size=2048)
    db.load_table("lineitem", gen.lineitem(), LINEITEM_SCHEMA)
    db.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
    db.load_table("orders", gen.orders(), ORDERS_SCHEMA)

    # Rate the simulated cloud as if this were the paper's 10 GB dataset,
    # so runtimes/costs land in the paper's ranges.
    scale = db.calibrate_to_paper_scale(paper_bytes=10e9)
    print(f"Loaded {', '.join(db.table_names())}; paper-scale factor {scale:.2e}\n")

    for sql in QUERIES:
        print(f"SQL: {sql}")
        baseline = db.execute(sql, mode="baseline")
        optimized = db.execute(sql, mode="optimized")
        speedup = baseline.runtime_seconds / max(optimized.runtime_seconds, 1e-9)
        print(f"  baseline : {human_seconds(baseline.runtime_seconds):>9}"
              f"  {human_dollars(baseline.cost.total)}")
        print(f"  optimized: {human_seconds(optimized.runtime_seconds):>9}"
              f"  {human_dollars(optimized.cost.total)}   ({speedup:.1f}x faster)")
        for row in optimized.rows[:5]:
            print(f"    {row}")
        if len(optimized.rows) > 5:
            print(f"    ... {len(optimized.rows) - 5} more rows")
        print()

    # `auto` asks the cost-based optimizer to pick the plan: it prices
    # baseline vs optimized from the statistics collected at load time
    # and runs the predicted-cheapest one.  EXPLAIN shows its reasoning.
    sql = "SELECT * FROM orders"  # pushdown buys nothing here: auto says GET
    print("optimizer EXPLAIN for", repr(sql))
    print(db.explain(sql))
    picked = db.execute(sql, mode="auto").details["optimizer"]["picked"]
    print(f"  auto ran the {picked!r} plan\n")

    # The workers knob changes real wall-clock, never the answer: add a
    # little per-request latency so there is network time to overlap,
    # then run the same scan serially and with 4 concurrent workers.
    db.ctx.client.request_delay = 0.002  # 2 ms per request
    sql = QUERIES[1]
    timings = {}
    for workers in (1, 4):
        db.ctx.workers = workers
        start = time.perf_counter()
        result = db.execute(sql)
        timings[workers] = time.perf_counter() - start
    db.ctx.client.request_delay = 0.0
    print(f"concurrent scan demo ({sql.split(' FROM ')[0]!r} ...):")
    print(f"  workers=1: {timings[1] * 1e3:7.1f} ms wall-clock")
    print(f"  workers=4: {timings[4] * 1e3:7.1f} ms wall-clock"
          f"   (same rows, bytes, and cost)")


if __name__ == "__main__":
    main()
