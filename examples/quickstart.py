#!/usr/bin/env python3
"""Quickstart: load TPC-H tables into PushdownDB and run SQL.

Shows the library's front door: the :class:`repro.PushdownDB` facade.
Every query runs twice — once as the no-pushdown baseline (GET whole
tables, compute locally) and once with the paper's S3 Select pushdown —
and prints simulated runtime and dollar cost for both.

Run:  python examples/quickstart.py
"""

from repro import PushdownDB
from repro.common.units import human_dollars, human_seconds
from repro.workloads.tpch import (
    CUSTOMER_SCHEMA,
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    TpchGenerator,
)

QUERIES = [
    # TPC-H Q6: entirely inside the S3 Select dialect -> fully pushed.
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem"
    " WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'"
    " AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
    # Group-by with a local tail.
    "SELECT l_returnflag, SUM(l_quantity) AS sum_qty, COUNT(*) AS n"
    " FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
    # Top-K.
    "SELECT l_orderkey, l_extendedprice FROM lineitem"
    " ORDER BY l_extendedprice DESC LIMIT 5",
    # Equi-join: the optimized plan ships a Bloom filter to S3.
    "SELECT SUM(o_totalprice) AS total FROM customer, orders"
    " WHERE c_custkey = o_custkey AND c_acctbal <= -900",
]


def main() -> None:
    print("Generating TPC-H data (scale factor 0.01) ...")
    gen = TpchGenerator(scale_factor=0.01)
    db = PushdownDB()
    db.load_table("lineitem", gen.lineitem(), LINEITEM_SCHEMA)
    db.load_table("customer", gen.customer(), CUSTOMER_SCHEMA)
    db.load_table("orders", gen.orders(), ORDERS_SCHEMA)

    # Rate the simulated cloud as if this were the paper's 10 GB dataset,
    # so runtimes/costs land in the paper's ranges.
    scale = db.calibrate_to_paper_scale(paper_bytes=10e9)
    print(f"Loaded {', '.join(db.table_names())}; paper-scale factor {scale:.2e}\n")

    for sql in QUERIES:
        print(f"SQL: {sql}")
        baseline = db.execute(sql, mode="baseline")
        optimized = db.execute(sql, mode="optimized")
        speedup = baseline.runtime_seconds / max(optimized.runtime_seconds, 1e-9)
        print(f"  baseline : {human_seconds(baseline.runtime_seconds):>9}"
              f"  {human_dollars(baseline.cost.total)}")
        print(f"  optimized: {human_seconds(optimized.runtime_seconds):>9}"
              f"  {human_dollars(optimized.cost.total)}   ({speedup:.1f}x faster)")
        for row in optimized.rows[:5]:
            print(f"    {row}")
        if len(optimized.rows) > 5:
            print(f"    ... {len(optimized.rows) - 5} more rows")
        print()


if __name__ == "__main__":
    main()
