#!/usr/bin/env python3
"""Group-by pushdown under data skew (paper Section VI).

Generates the paper's Zipfian workload at several skew levels and
compares the four group-by strategies, then sweeps the hybrid strategy's
split point (how many populous groups are aggregated at S3) the way
Figure 6 does.

Run:  python examples/groupby_skew.py
"""

from repro.cloud.context import CloudContext
from repro.common.units import human_bytes, human_seconds
from repro.engine.catalog import Catalog, load_table
from repro.strategies.groupby import (
    AggSpec,
    GroupByQuery,
    filtered_group_by,
    hybrid_group_by,
    s3_side_group_by,
    server_side_group_by,
)
from repro.workloads.synthetic import groupby_schema, skewed_groupby_table
from repro.workloads.zipf import head_mass

NUM_ROWS = 30_000

STRATEGIES = (
    ("server-side", server_side_group_by),
    ("filtered", filtered_group_by),
    ("s3-side", s3_side_group_by),
    ("hybrid", hybrid_group_by),
)


def main() -> None:
    query_template = dict(
        group_columns=["g0"],
        aggregates=[AggSpec("sum", c) for c in ("v0", "v1", "v2", "v3")],
    )

    for theta in (0.0, 0.9, 1.3):
        mass = head_mass(100, theta, 4)
        print(f"\n=== Zipf theta = {theta} "
              f"(top-4 groups hold {mass:.0%} of rows) ===")
        ctx, catalog = CloudContext(), Catalog()
        rows = skewed_groupby_table(NUM_ROWS, theta=theta, seed=11)
        load_table(ctx, catalog, "skewed", rows, groupby_schema(), bucket="demo")
        ctx.calibrate_to_paper_scale(catalog.get("skewed").total_bytes, 10e9)
        query = GroupByQuery(table="skewed", **query_template)
        for name, strategy in STRATEGIES:
            execution = strategy(ctx, catalog, query)
            moved = execution.bytes_returned + execution.bytes_transferred
            print(f"  {name:12s} {human_seconds(execution.runtime_seconds):>9}"
                  f"   groups: {len(execution.rows):3d}"
                  f"   data to server: {human_bytes(moved):>10}")

    # ------------------------------------------------------------------
    # Figure 6: where should hybrid split?
    # ------------------------------------------------------------------
    print("\n=== Hybrid split point (theta = 1.3) ===")
    ctx, catalog = CloudContext(), Catalog()
    rows = skewed_groupby_table(NUM_ROWS, theta=1.3, seed=11)
    load_table(ctx, catalog, "skewed", rows, groupby_schema(), bucket="demo")
    ctx.calibrate_to_paper_scale(catalog.get("skewed").total_bytes, 10e9)
    query = GroupByQuery(table="skewed", **query_template)
    print(f"  {'groups@S3':>9}  {'S3 side':>9}  {'server side':>11}  {'total':>9}")
    for split in (1, 2, 4, 6, 8, 10, 12):
        execution = hybrid_group_by(ctx, catalog, query, s3_groups=split)
        print(f"  {split:>9}"
              f"  {human_seconds(execution.details['s3_side_seconds']):>9}"
              f"  {human_seconds(execution.details['server_side_seconds']):>11}"
              f"  {human_seconds(execution.runtime_seconds):>9}")
    print("\nThe phase time is the max of the two sides; the sweet spot is"
          " where they balance (paper: 6-8 groups).")


if __name__ == "__main__":
    main()
