#!/usr/bin/env python3
"""Sampling-based top-K and its analytic sample-size model (Section VII).

Demonstrates the two-phase algorithm on the lineitem table, sweeps the
sample size around the analytic optimum ``S* = sqrt(K*N/alpha)``, and
verifies the result against a plain server-side top-K.

Run:  python examples/topk_sampling.py
"""

from repro.cloud.context import CloudContext
from repro.common.units import human_bytes, human_seconds
from repro.engine.catalog import Catalog
from repro.queries.dataset import load_tpch
from repro.strategies.topk import (
    TopKQuery,
    optimal_sample_size,
    sampling_top_k,
    server_side_top_k,
)


def main() -> None:
    ctx, catalog = CloudContext(), Catalog()
    print("Loading lineitem (scale factor 0.01) ...")
    load_tpch(ctx, catalog, 0.01, tables=("lineitem",))
    table = catalog.get("lineitem")
    ctx.calibrate_to_paper_scale(table.total_bytes, 7.25e9)

    k = 100
    alpha = 1.0 / len(table.schema)
    optimum = optimal_sample_size(k, table.num_rows, alpha)
    print(f"N = {table.num_rows} rows, K = {k}, alpha ~ {alpha:.3f}")
    print(f"analytic optimum S* = sqrt(K*N/alpha) = {optimum}\n")

    query = TopKQuery(table="lineitem", order_column="l_extendedprice", k=k)

    reference = server_side_top_k(ctx, catalog, query)
    print(f"server-side top-K: {human_seconds(reference.runtime_seconds)}, "
          f"moved {human_bytes(reference.bytes_transferred)}\n")

    print(f"  {'sample S':>9}  {'phase1':>8}  {'phase2':>8}  {'total':>8}"
          f"  {'phase2 rows':>11}  {'bytes moved':>11}  correct")
    price_idx = table.schema.index_of("l_extendedprice")
    expected = [r[price_idx] for r in reference.rows]
    for factor in (0.05, 0.2, 1.0, 4.0, 16.0):
        sample_size = max(k, int(optimum * factor))
        execution = sampling_top_k(ctx, catalog, query, sample_size=sample_size)
        correct = [r[price_idx] for r in execution.rows] == expected
        print(f"  {sample_size:>9}"
              f"  {human_seconds(execution.details['sample_seconds']):>8}"
              f"  {human_seconds(execution.details['scan_seconds']):>8}"
              f"  {human_seconds(execution.runtime_seconds):>8}"
              f"  {execution.details['phase2_rows']:>11}"
              f"  {human_bytes(execution.bytes_returned):>11}"
              f"  {correct}")

    print("\nSmall samples make phase 2 return lots of rows (loose"
          " threshold); big samples make phase 1 the bottleneck.  The"
          " analytic S* minimizes the bytes-moved column.")


if __name__ == "__main__":
    main()
