#!/usr/bin/env python3
"""The Section IV-A index-table design, end to end.

Builds a ``|value|first_byte|last_byte|`` index over a table, runs point
and range lookups through all three filter strategies, and shows where
the indexing strategy's per-record HTTP requests start to hurt — the
crossover Figure 1 plots.

Run:  python examples/indexing.py
"""

from repro.cloud.context import CloudContext
from repro.common.units import human_dollars, human_seconds
from repro.engine.catalog import Catalog, load_table
from repro.sqlparser.parser import parse_expression
from repro.strategies.filter import (
    FilterQuery,
    indexed_filter,
    s3_side_filter,
    server_side_filter,
)
from repro.workloads.synthetic import FILTER_SCHEMA, filter_table

NUM_ROWS = 30_000
PAPER_ROWS = 60_000_000  # the 10 GB table the paper sweeps over


def main() -> None:
    ctx, catalog = CloudContext(), Catalog()
    print(f"Loading a {NUM_ROWS}-row table with an index on `key` ...")
    rows = filter_table(NUM_ROWS, seed=42)
    info = load_table(
        ctx, catalog, "data", rows, FILTER_SCHEMA,
        bucket="demo", index_columns=["key"],
    )
    ctx.calibrate_to_paper_scale(info.total_bytes, 10e9)
    ctx.client.range_request_weight = PAPER_ROWS / NUM_ROWS

    index = info.index_for("key")
    print(f"index objects: {len(index.keys)} (one per data partition),"
          f" schema {index.schema.names}\n")

    print(f"{'matched rows':>12}  {'strategy':12}  {'runtime':>9}  {'cost':>11}")
    for matched in (1, 30, 300, 600):
        query = FilterQuery(
            table="data", predicate=parse_expression(f"key < {matched}")
        )
        for name, strategy in (
            ("server-side", server_side_filter),
            ("s3-side", s3_side_filter),
            ("indexing", indexed_filter),
        ):
            execution = strategy(ctx, catalog, query)
            assert len(execution.rows) == matched
            print(f"{matched:>12}  {name:12}"
                  f"  {human_seconds(execution.runtime_seconds):>9}"
                  f"  {human_dollars(execution.cost.total):>11}")
        print()

    print("Each matched row costs the indexing strategy one byte-range GET")
    print("(S3 allows a single range per request - the paper's Suggestion 1),")
    print("so it wins only when very few rows match.")


if __name__ == "__main__":
    main()
