#!/usr/bin/env python3
"""Reproduce Figure 10: the full query suite, baseline vs optimized.

Runs the four micro-operator queries and TPC-H Q1, Q3, Q6, Q14, Q17, Q19
in both configurations and prints the runtime/cost table with the
geometric-mean speedup — the paper's headline result (6.7x faster, 30%
cheaper).

Run:  python examples/tpch_suite.py  [scale_factor]
"""

import sys

from repro.experiments import fig10_tpch


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"Running the Figure 10 suite at TPC-H scale factor {scale_factor}")
    print("(simulated runtimes are paper-equivalent: the context is rated")
    print(" as if the dataset were the paper's 10 GB)\n")
    result = fig10_tpch.run(scale_factor=scale_factor)
    print(result.to_table())
    print()
    print(f"geo-mean speedup : {result.notes['geomean_speedup']}x"
          f"   (paper: 6.7x)")
    print(f"total cost ratio : {result.notes['total_cost_ratio']}"
          f"    (paper: 0.70)")


if __name__ == "__main__":
    main()
