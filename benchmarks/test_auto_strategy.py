"""Optimizer bench: chooser picks vs measured winners across the sweeps."""

from conftest import emit, run_once
from repro.experiments import auto_strategy


def test_auto_strategy_matches_measured_winners(benchmark, capsys):
    result = run_once(benchmark, lambda: auto_strategy.run())
    emit(capsys, result)
    agree = sum(1 for r in result.rows if r["agree"])
    # Full-size sweeps must agree everywhere; the crossover tolerance is
    # only for the reduced tier-1 configuration.
    assert agree == len(result.rows), result.notes
