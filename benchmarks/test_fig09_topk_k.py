"""Figure 9 bench: server-side vs sampling top-K as K grows."""

from conftest import emit, run_once
from repro.experiments import fig09_topk_k


def test_fig09_topk_k(benchmark, capsys):
    result = run_once(benchmark, lambda: fig09_topk_k.run(scale_factor=0.01))
    emit(capsys, result)
    server = result.column("server-side", "runtime_s")
    sampling = result.column("sampling", "runtime_s")
    assert all(s > p for s, p in zip(server, sampling))
    server_cost = result.column("server-side", "cost_total")
    sampling_cost = result.column("sampling", "cost_total")
    assert all(s > p for s, p in zip(server_cost, sampling_cost))
