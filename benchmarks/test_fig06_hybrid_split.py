"""Figure 6 bench: hybrid group-by S3/server split point."""

from conftest import emit, run_once
from repro.experiments import fig06_hybrid_split


def test_fig06_hybrid_split(benchmark, capsys):
    result = run_once(benchmark, lambda: fig06_hybrid_split.run(num_rows=25_000))
    emit(capsys, result)
    s3_times = [r["s3_side_s"] for r in result.rows]
    server_times = [r["server_side_s"] for r in result.rows]
    assert s3_times == sorted(s3_times)
    assert server_times == sorted(server_times, reverse=True)
