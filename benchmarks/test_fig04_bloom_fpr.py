"""Figure 4 bench: Bloom join vs false-positive rate (U-shape)."""

from conftest import emit, run_once
from repro.experiments import fig04_bloom_fpr


def test_fig04_bloom_fpr(benchmark, capsys):
    result = run_once(benchmark, lambda: fig04_bloom_fpr.run(scale_factor=0.01))
    emit(capsys, result)
    bloom = result.series("bloom")
    runtimes = [r["runtime_s"] for r in bloom]
    fprs = [r["fpr"] for r in bloom]
    best = fprs[runtimes.index(min(runtimes))]
    # Paper: the sweet spot sits mid-range (0.01, with a flat bottom out
    # to ~0.3); both extremes are worse.  Our minimum lands at 0.1-0.3
    # (documented in EXPERIMENTS.md) - assert the U-shape, mid-range.
    assert 0.001 <= best <= 0.3
    assert max(runtimes[0], runtimes[-1]) > min(runtimes)
    benchmark.extra_info["best_fpr"] = best
