"""Figure 3 bench: join strategies vs orders selectivity."""

from conftest import emit, run_once
from repro.experiments import fig03_join_orders


def test_fig03_join_orders(benchmark, capsys):
    result = run_once(benchmark, lambda: fig03_join_orders.run(scale_factor=0.01))
    emit(capsys, result)
    filtered = result.column("filtered", "runtime_s")
    baseline = result.column("baseline", "runtime_s")
    bloom = result.column("bloom", "runtime_s")
    # Filtered beats baseline when the date filter is selective and
    # converges as it opens up; Bloom stays fast and flat.
    assert filtered[0] < baseline[0]
    assert filtered[-1] > filtered[0]
    assert max(bloom) < max(baseline)
