"""Figure 7 bench: group-by strategies vs Zipf skew."""

from conftest import emit, run_once
from repro.experiments import fig07_groupby_skew


def test_fig07_groupby_skew(benchmark, capsys):
    result = run_once(benchmark, lambda: fig07_groupby_skew.run(num_rows=25_000))
    emit(capsys, result)
    hybrid = result.column("hybrid", "runtime_s")
    filtered = result.column("filtered", "runtime_s")
    # Paper: 31% faster than filtered at theta=1.3.
    assert hybrid[-1] < filtered[-1]
    benchmark.extra_info["hybrid_gain_at_1.3"] = round(
        1 - hybrid[-1] / filtered[-1], 3
    )
