"""Section II-B bench: the pricing table, verified and timed.

Prints the unit-price table from the paper and asserts the canonical
derived numbers (e.g. scanning 10 GB costs $0.02).  The timed body is
the cost-model evaluation itself over a large batch of request records.
"""

import pytest

from repro.cloud.metrics import RequestKind, RequestRecord
from repro.cloud.pricing import PAPER_PRICING, cost_of_query
from repro.common.units import GB


def test_cost_model(benchmark, capsys):
    records = [
        RequestRecord(
            RequestKind.SELECT, "b", f"k{i}",
            bytes_scanned=int(0.5 * GB), bytes_returned=10_000_000,
        )
        for i in range(20)
    ] + [
        RequestRecord(RequestKind.GET, "b", f"g{i}", bytes_transferred=1_000_000)
        for i in range(1000)
    ]
    cost = benchmark(lambda: cost_of_query(records, runtime_seconds=60.0))
    with capsys.disabled():
        print()
        print("== tbl-cost: Section II-B pricing ==")
        print(f"scan     $/GB          {PAPER_PRICING.select_scan_per_gb}")
        print(f"return   $/GB          {PAPER_PRICING.select_return_per_gb}")
        print(f"requests $/1000        {PAPER_PRICING.get_per_1000_requests}")
        print(f"compute  $/h r4.8xl    {PAPER_PRICING.ec2_per_hour}")
        print(f"example query: scan 10GB, return 0.2GB, 1020 req, 60s compute")
        print(f"  -> compute ${cost.compute:.5f} request ${cost.request:.6f}"
              f" scan ${cost.scan:.5f} transfer ${cost.transfer:.6f}")
    assert cost.scan == pytest.approx(10 * 0.002)
    assert cost.transfer == pytest.approx(0.2 * 0.0007)
    assert cost.request == pytest.approx(1.02 * 0.0004)
    assert cost.compute == pytest.approx(2.128 / 60)
