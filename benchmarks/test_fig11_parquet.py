"""Figure 11 bench: CSV vs Parquet under S3 Select filters."""

from conftest import emit, run_once
from repro.experiments import fig11_parquet


def test_fig11_parquet(benchmark, capsys):
    result = run_once(benchmark, lambda: fig11_parquet.run(num_rows=20_000))
    emit(capsys, result)
    wide_low = {
        r["strategy"]: r["runtime_s"]
        for r in result.rows
        if r["columns"] == 20 and r["selectivity"] == 0.0
    }
    wide_high = {
        r["strategy"]: r["runtime_s"]
        for r in result.rows
        if r["columns"] == 20 and r["selectivity"] == 1.0
    }
    assert wide_low["parquet"] < wide_low["csv"] / 2   # column pruning wins
    assert abs(wide_high["parquet"] - wide_high["csv"]) < 0.2 * wide_high["csv"]
