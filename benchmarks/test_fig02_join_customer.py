"""Figure 2 bench: join strategies vs customer selectivity."""

from conftest import emit, run_once
from repro.experiments import fig02_join_customer


def test_fig02_join_customer(benchmark, capsys):
    result = run_once(benchmark, lambda: fig02_join_customer.run(scale_factor=0.01))
    emit(capsys, result)
    bloom = result.column("bloom", "runtime_s")
    filtered = result.column("filtered", "runtime_s")
    assert bloom[0] < filtered[0]  # Bloom wins when selective
    benchmark.extra_info["bloom_speedup_at_-950"] = round(filtered[0] / bloom[0], 2)
