"""Figure 10 bench: the full suite, baseline vs optimized PushdownDB.

Reproduces the paper's headline: optimized PushdownDB is on average
6.7x faster and 30% cheaper than the no-pushdown baseline.
"""

from conftest import emit, run_once
from repro.experiments import fig10_tpch


def test_fig10_tpch(benchmark, capsys):
    result = run_once(benchmark, lambda: fig10_tpch.run(scale_factor=0.01))
    emit(capsys, result)
    speedup = result.notes["geomean_speedup"]
    cost_ratio = result.notes["total_cost_ratio"]
    assert 3.0 <= speedup <= 12.0       # paper: 6.7x
    assert cost_ratio < 0.9             # paper: 0.70
    benchmark.extra_info["geomean_speedup"] = speedup
    benchmark.extra_info["cost_ratio"] = cost_ratio
