"""Figure 1 bench: filter strategies vs selectivity (runtime + cost)."""

from conftest import emit, run_once
from repro.experiments import fig01_filter


def test_fig01_filter(benchmark, capsys):
    result = run_once(benchmark, lambda: fig01_filter.run(num_rows=30_000))
    emit(capsys, result)
    indexing = result.column("indexing", "runtime_s")
    s3 = result.column("s3-side", "runtime_s")
    server = result.column("server-side", "runtime_s")
    # Paper shape: S3-side ~10x faster than server-side; indexing
    # collapses at low selectivity.
    assert all(a > 4 * b for a, b in zip(server, s3))
    assert indexing[-1] > indexing[0] * 5
    benchmark.extra_info["server_vs_s3_speedup"] = round(server[0] / s3[0], 2)
