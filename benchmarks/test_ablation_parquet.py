"""Ablation: Parquet row-group size and compression.

The paper (Section IX) reports that row-group size and compression made
little difference in their runs; this bench verifies the same holds in
the reproduction (scan accounting changes, runtimes stay close).
"""

from conftest import emit, run_once
from repro.experiments import fig11_parquet
from repro.experiments.harness import ExperimentResult
from repro.storage.parquet import ParquetFile, write_parquet
from repro.workloads.synthetic import float_schema, float_table


def run_ablation(num_rows=20_000):
    rows = float_table(num_rows, 10, seed=4)
    schema = float_schema(10)
    result = ExperimentResult(
        experiment="ablation-parquet",
        title="Parquet size vs row-group size and codec",
    )
    for codec in ("zlib", "none"):
        for group_rows in (num_rows // 16, num_rows // 4, num_rows):
            data = write_parquet(
                rows, schema, row_group_rows=group_rows, compression=codec
            )
            pq = ParquetFile(data)
            result.rows.append(
                {
                    "codec": codec,
                    "row_group_rows": group_rows,
                    "file_bytes": len(data),
                    "one_column_scan_bytes": pq.scan_bytes_for(["f0"]),
                    "row_groups": len(pq.row_groups),
                }
            )
    return result


def test_ablation_parquet(benchmark, capsys):
    result = run_once(benchmark, run_ablation)
    emit(capsys, result)
    compressed = [r for r in result.rows if r["codec"] == "zlib"]
    raw = [r for r in result.rows if r["codec"] == "none"]
    # Compression shrinks the file (paper: ~70% of original).
    assert compressed[0]["file_bytes"] < raw[0]["file_bytes"]
    # Column-selective scans touch ~1/10 of a 10-column file regardless
    # of row-group size.
    for row in result.rows:
        assert row["one_column_scan_bytes"] < row["file_bytes"] / 5
