"""Figure 5 bench: group-by strategies vs number of groups."""

from conftest import emit, run_once
from repro.experiments import fig05_groupby_groups


def test_fig05_groupby_groups(benchmark, capsys):
    result = run_once(benchmark, lambda: fig05_groupby_groups.run(num_rows=25_000))
    emit(capsys, result)
    s3 = result.column("s3-side", "runtime_s")
    filtered = result.column("filtered", "runtime_s")
    server = result.column("server-side", "runtime_s")
    assert s3[0] < filtered[0] < server[0]  # few groups: pushdown wins
    assert s3[-1] > filtered[-1]            # many groups: S3-side crosses over
