"""Figure 14 bench: feedback-driven adaptive execution end to end.

Correlated predicates break the System-R independence assumption, the
static bushy plan joins the misestimated dimension first, and the
adaptive executor re-plans mid-flight — this benchmark pins the
measured-win claims at full experiment scale.
"""

from conftest import emit, run_once
from repro.experiments import fig14_adaptive


def test_fig14_adaptive(benchmark, capsys):
    result = run_once(benchmark, lambda: fig14_adaptive.run())
    emit(capsys, result)
    # At least one swept point fires a re-plan that beats the static
    # plan on measured cost (the harness itself asserts runtime too).
    assert result.notes["replan_wins"] >= 1
    # Warm (feedback-informed) static plans never lose to cold ones.
    agreed, total = result.notes["warm_agreement"].split("/")
    assert agreed == total
    for value in {r["threshold"] for r in result.rows if "threshold" in r}:
        point = [r for r in result.rows if r.get("threshold") == value]
        static = next(r for r in point if r["strategy"] == "static")
        adaptive = next(r for r in point if r["strategy"] == "adaptive")
        warm = next(r for r in point if r["strategy"] == "warm")
        assert adaptive["cost_total"] <= static["cost_total"] * (1 + 1e-9)
        assert adaptive["runtime_s"] <= static["runtime_s"] * (1 + 1e-9)
        assert warm["cost_total"] <= static["cost_total"] * (1 + 1e-9)
    # Session stats reuse: repeated probed optimizations are free.
    probes = [
        r for r in result.rows if r["strategy"] == "probed-filter-choice"
    ]
    assert probes[0]["probe_requests"] > 0
    assert all(r["probe_requests"] == 0 for r in probes[1:])
