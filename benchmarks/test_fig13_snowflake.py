"""Figure 13 bench: bushy vs left-deep plans on the snowflake join."""

from conftest import emit, run_once
from repro.experiments import fig13_snowflake


def test_fig13_snowflake(benchmark, capsys):
    result = run_once(benchmark, lambda: fig13_snowflake.run())
    emit(capsys, result)
    orders = {
        r["strategy"] for r in result.rows
        if r["strategy"] not in ("auto", "dp-pick")
    }
    assert len(orders) == 16  # 5-node path graph: 2^4 interval orders
    # The tentpole claim: at >= 1 swept point the DP pick is genuinely
    # bushy and measures no worse than the best left-deep order.
    assert result.notes["bushy_wins"] >= 1
    # The pick never loses to the best left-deep order by more than the
    # crossover regret bound, at any point.
    for value in {r["threshold"] for r in result.rows}:
        point = [r for r in result.rows if r["threshold"] == value]
        pick = next(r for r in point if r["strategy"] == "dp-pick")
        best = min(
            r["cost_total"] for r in point
            if r["strategy"] not in ("auto", "dp-pick")
        )
        assert pick["cost_total"] <= best * 1.06
