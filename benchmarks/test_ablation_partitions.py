"""Ablation: how table partitioning (parallel streams) changes the story.

Not a paper figure; DESIGN.md calls out partition count as the main
free parameter our calibration fixes (16).  Sweeps it and reports the
S3-side filter's simulated runtime: more partitions parallelize the scan
until per-phase latency floors it.
"""

from conftest import emit, run_once
from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import ExperimentResult, calibrate_tables
from repro.sqlparser.parser import parse_expression
from repro.strategies.filter import FilterQuery, s3_side_filter, server_side_filter
from repro.workloads.synthetic import FILTER_SCHEMA, filter_table


def run_ablation(num_rows=20_000, partition_counts=(1, 2, 4, 8, 16, 32)):
    rows = filter_table(num_rows, seed=9)
    result = ExperimentResult(
        experiment="ablation-partitions",
        title="S3-side filter runtime vs table partition count",
    )
    for partitions in partition_counts:
        ctx, catalog = CloudContext(), Catalog()
        load_table(
            ctx, catalog, "t", rows, FILTER_SCHEMA,
            bucket="abl", partitions=partitions,
        )
        calibrate_tables(ctx, catalog, ["t"], 10e9)
        query = FilterQuery(table="t", predicate=parse_expression("key < 100"))
        pushed = s3_side_filter(ctx, catalog, query)
        server = server_side_filter(ctx, catalog, query)
        result.rows.append(
            {
                "partitions": partitions,
                "s3_side_s": round(pushed.runtime_seconds, 3),
                "server_side_s": round(server.runtime_seconds, 3),
                "speedup": round(
                    server.runtime_seconds / pushed.runtime_seconds, 2
                ),
            }
        )
    return result


def test_ablation_partitions(benchmark, capsys):
    result = run_once(benchmark, run_ablation)
    emit(capsys, result)
    s3_times = [r["s3_side_s"] for r in result.rows]
    # The pushed scan parallelizes: strictly faster with more partitions.
    assert s3_times[0] > s3_times[-1]
