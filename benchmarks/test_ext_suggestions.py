"""Ablation bench: the paper's Section X suggestions, quantified.

Measures what the two buildable interface suggestions would buy:

* Suggestion 1 (multi-range GETs) against the Figure 1 indexing
  strategy at the selectivity where it collapses;
* Suggestion 4 (partial group-by) against S3-side/hybrid group-by on
  the Figure 5 uniform workload across group counts.
"""

from conftest import emit, run_once
from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.experiments.harness import ExperimentResult, calibrate_tables
from repro.sqlparser.parser import parse_expression
from repro.strategies.extensions import (
    multirange_indexed_filter,
    partial_pushdown_group_by,
)
from repro.strategies.filter import FilterQuery, indexed_filter, s3_side_filter
from repro.strategies.groupby import (
    AggSpec,
    GroupByQuery,
    filtered_group_by,
    s3_side_group_by,
)
from repro.workloads.synthetic import (
    FILTER_SCHEMA,
    filter_table,
    groupby_schema,
    uniform_groupby_table,
)


def run_suggestion1(num_rows=30_000, matches=(6, 60, 600, 1200)):
    ctx, catalog = CloudContext(), Catalog()
    load_table(
        ctx, catalog, "data", filter_table(num_rows, seed=21), FILTER_SCHEMA,
        bucket="sugg1", index_columns=["key"],
    )
    calibrate_tables(ctx, catalog, ["data"], 10e9)
    ctx.client.range_request_weight = 60_000_000 / num_rows
    result = ExperimentResult(
        experiment="suggestion-1",
        title="Indexing with vs without multi-range GETs (Fig 1 axis)",
    )
    for matched in matches:
        query = FilterQuery(
            table="data", predicate=parse_expression(f"key < {matched}")
        )
        for name, strategy in (
            ("s3-side", s3_side_filter),
            ("indexing", indexed_filter),
            ("indexing+multirange", multirange_indexed_filter),
        ):
            execution = strategy(ctx, catalog, query)
            result.rows.append(
                {
                    "matched_rows": matched,
                    "strategy": name,
                    "runtime_s": round(execution.runtime_seconds, 3),
                    "cost_total": round(execution.cost.total, 6),
                    "cost_request": round(execution.cost.request, 6),
                }
            )
    return result


def run_suggestion4(num_rows=25_000, group_counts=(2, 8, 32)):
    ctx, catalog = CloudContext(), Catalog()
    load_table(
        ctx, catalog, "uniform", uniform_groupby_table(num_rows, seed=21),
        groupby_schema(), bucket="sugg4",
    )
    calibrate_tables(ctx, catalog, ["uniform"], 10e9)
    result = ExperimentResult(
        experiment="suggestion-4",
        title="CASE-encoded vs partial group-by pushdown (Fig 5 axis)",
    )
    aggregates = [AggSpec("sum", c) for c in ("v0", "v1", "v2", "v3")]
    for groups in group_counts:
        column = f"g{groups.bit_length() - 2}"
        query = GroupByQuery(
            table="uniform", group_columns=[column], aggregates=aggregates
        )
        for name, strategy in (
            ("filtered", filtered_group_by),
            ("s3-side (CASE)", s3_side_group_by),
            ("partial pushdown", partial_pushdown_group_by),
        ):
            execution = strategy(ctx, catalog, query)
            result.rows.append(
                {
                    "num_groups": groups,
                    "strategy": name,
                    "runtime_s": round(execution.runtime_seconds, 3),
                    "cost_total": round(execution.cost.total, 6),
                    "bytes_returned": execution.bytes_returned,
                }
            )
    return result


def test_suggestion1_multirange(benchmark, capsys):
    result = run_once(benchmark, run_suggestion1)
    emit(capsys, result)
    at_worst = {
        r["strategy"]: r for r in result.rows if r["matched_rows"] == 1200
    }
    # Where plain indexing collapses, multi-range GETs keep it competitive.
    assert (
        at_worst["indexing+multirange"]["runtime_s"]
        < at_worst["indexing"]["runtime_s"] / 10
    )
    assert (
        at_worst["indexing+multirange"]["cost_request"]
        < at_worst["indexing"]["cost_request"] / 100
    )


def test_suggestion4_partial_groupby(benchmark, capsys):
    result = run_once(benchmark, run_suggestion4)
    emit(capsys, result)
    partial = [r for r in result.rows if r["strategy"] == "partial pushdown"]
    case_encoded = [r for r in result.rows if r["strategy"] == "s3-side (CASE)"]
    # Partial pushdown is flat in the group count and beats the CASE
    # encoding everywhere (it avoids the second scan and the per-group
    # expression blowup).
    for p, c in zip(partial, case_encoded):
        assert p["runtime_s"] < c["runtime_s"]
    assert partial[-1]["runtime_s"] < 1.5 * partial[0]["runtime_s"]


def run_compressed_transfer(num_rows=20_000):
    """Section IX mitigation: compressed S3 Select responses.

    Reruns Figure 11's worst case for Parquet (20 columns, selectivity
    1.0, where plain CSV-format responses erase Parquet's advantage) with
    compressed transfer enabled.
    """
    from repro.strategies.scans import phase_since
    from repro.workloads.synthetic import float_schema, float_table

    ctx, catalog = CloudContext(), Catalog()
    rows = float_table(num_rows, 20, seed=22)
    schema = float_schema(20)
    load_table(ctx, catalog, "csv_t", rows, schema, bucket="ix")
    load_table(ctx, catalog, "pq_t", rows, schema, bucket="ix",
               data_format="parquet", row_group_rows=max(1, num_rows // 8))
    calibrate_tables(ctx, catalog, ["csv_t"], 2e9)
    result = ExperimentResult(
        experiment="section-IX",
        title="Compressed S3 Select responses at selectivity 1.0 (Fig 11 worst case)",
    )
    sql = "SELECT f0 FROM S3Object WHERE f0 < 1.0"
    for fmt, table_name in (("csv", "csv_t"), ("parquet", "pq_t")):
        for compressed in (False, True):
            table = catalog.get(table_name)
            mark = ctx.begin_query()
            out_rows = []
            for key in table.keys:
                r = ctx.client.select_object_content(
                    table.bucket, key, sql, compress_output=compressed
                )
                out_rows.extend(r.rows)
            phase = phase_since(
                ctx, mark, "scan", streams=table.partitions,
                ingest=(len(out_rows), 1),
            )
            execution = ctx.finalize(mark, out_rows, ["f0"], [phase])
            result.rows.append(
                {
                    "format": fmt,
                    "compressed_transfer": compressed,
                    "runtime_s": round(execution.runtime_seconds, 3),
                    "bytes_returned": execution.bytes_returned,
                    "cost_transfer": round(execution.cost.transfer, 6),
                }
            )
    return result


def test_sectionIX_compressed_transfer(benchmark, capsys):
    result = run_once(benchmark, run_compressed_transfer)
    emit(capsys, result)
    by_key = {
        (r["format"], r["compressed_transfer"]): r for r in result.rows
    }
    # Compression cuts the returned bytes and the transfer bill for both
    # formats; network/transfer-bound runtimes improve or stay equal.
    for fmt in ("csv", "parquet"):
        assert (
            by_key[(fmt, True)]["bytes_returned"]
            < by_key[(fmt, False)]["bytes_returned"] * 0.8
        )
        assert (
            by_key[(fmt, True)]["cost_transfer"]
            < by_key[(fmt, False)]["cost_transfer"]
        )
