"""Microbenchmarks of the substrate itself (not a paper figure).

Measures the simulated S3 Select engine's scan throughput, the local
hash join, the batched vs materialized decode paths, the vectorized
columnar operator paths against their row-wise twins, and the
wall-clock effect of concurrent partition scans, so regressions in the
substrate are visible independently of the simulated-time results.

The vectorized-vs-row-wise results are also written to
``BENCH_throughput.json`` (override the path with the
``BENCH_THROUGHPUT_JSON`` environment variable) so CI can archive
per-operator rows/sec across commits.
"""

import json
import os
import statistics
import time

import pytest

from repro.cloud.context import CloudContext
from repro.engine.batch import Batch
from repro.engine.catalog import Catalog, load_table
from repro.engine.operators.base import batches_of
from repro.engine.operators.filter import filter_batches
from repro.engine.operators.groupby import group_by_batches
from repro.engine.operators.hashjoin import hash_join
from repro.queries.common import items
from repro.s3select.engine import execute_select
from repro.sqlparser.parser import parse_expression
from repro.storage.csvcodec import decode_table, encode_table, iter_decode_batches
from repro.storage.object_store import StoredObject
from repro.strategies.scans import select_table
from repro.workloads.synthetic import (
    FILTER_SCHEMA,
    clustered_filter_table,
    filter_table,
)

ROWS = filter_table(20_000, seed=3)
DATA, _ = encode_table(ROWS)
OBJ = StoredObject(
    DATA,
    {"format": "csv", "schema": [f"{c.name}:{c.type}" for c in FILTER_SCHEMA.columns],
     "header": False},
)

NAMES = [c.name for c in FILTER_SCHEMA.columns]
BATCH_SIZE = 1024
COLUMN_BATCHES = [Batch.from_rows(c) for c in batches_of(ROWS, BATCH_SIZE)]
LIST_BATCHES = list(batches_of(ROWS, BATCH_SIZE))

#: rows/sec per operator, vectorized vs row-wise; dumped to JSON at exit.
_THROUGHPUT: dict[str, dict[str, float]] = {}


def _median_seconds(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _record_speedup(benchmark, operator: str, vector_s: float, row_s: float):
    entry = {
        "rows": len(ROWS),
        "vectorized_rows_per_sec": round(len(ROWS) / vector_s),
        "row_wise_rows_per_sec": round(len(ROWS) / row_s),
        "speedup": round(row_s / vector_s, 2),
    }
    _THROUGHPUT[operator] = entry
    benchmark.extra_info.update(entry)
    return entry["speedup"]


@pytest.fixture(scope="module", autouse=True)
def _dump_throughput_json():
    """Write the vectorized-vs-row-wise numbers after the module runs."""
    yield
    if not _THROUGHPUT:
        return
    path = os.environ.get("BENCH_THROUGHPUT_JSON", "BENCH_throughput.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"batch_size": BATCH_SIZE, "operators": _THROUGHPUT}, fh, indent=2
        )
        fh.write("\n")


def test_vectorized_filter_throughput(benchmark):
    """Columnar filter must beat the row-wise filter by >=2x rows/sec.

    Both paths run the same WHERE through ``filter_batches``; the only
    difference is the batch currency (columnar Batches vs row-tuple
    lists), which selects the vectorized or the row-wise predicate.
    """
    predicate = parse_expression("key < 10000 AND p0 >= 250000.0")

    def drain(batches):
        return sum(len(b) for b in filter_batches(batches, NAMES, predicate))

    expected = drain(LIST_BATCHES)
    assert drain(COLUMN_BATCHES) == expected and expected > 0

    vector_s = _median_seconds(lambda: drain(COLUMN_BATCHES))
    row_s = _median_seconds(lambda: drain(LIST_BATCHES))
    benchmark(lambda: drain(COLUMN_BATCHES))
    speedup = _record_speedup(benchmark, "filter_scan", vector_s, row_s)
    assert speedup >= 2.0, (
        f"vectorized filter only {speedup:.2f}x the row-wise path"
        f" ({vector_s:.4f}s vs {row_s:.4f}s)"
    )


def test_vectorized_group_by_throughput(benchmark):
    """Columnar group-by must beat the row-wise path by >=2x rows/sec."""
    groups = [parse_expression("key % 16")]
    aggs = items("COUNT(*) AS n", "SUM(p0) AS s0", "AVG(p1) AS a1")

    def grouped(batches):
        return group_by_batches(batches, NAMES, groups, aggs)

    assert grouped(COLUMN_BATCHES).rows == grouped(LIST_BATCHES).rows

    vector_s = _median_seconds(lambda: grouped(COLUMN_BATCHES))
    row_s = _median_seconds(lambda: grouped(LIST_BATCHES))
    benchmark(lambda: grouped(COLUMN_BATCHES))
    speedup = _record_speedup(benchmark, "group_by", vector_s, row_s)
    assert speedup >= 2.0, (
        f"vectorized group-by only {speedup:.2f}x the row-wise path"
        f" ({vector_s:.4f}s vs {row_s:.4f}s)"
    )


def test_select_scan_throughput(benchmark):
    result = benchmark(
        lambda: execute_select(OBJ, "SELECT key FROM S3Object WHERE key < 100")
    )
    assert len(result.rows) == 100
    benchmark.extra_info["rows_scanned"] = result.rows_scanned


def test_select_aggregate_throughput(benchmark):
    result = benchmark(
        lambda: execute_select(OBJ, "SELECT SUM(p0), COUNT(*) FROM S3Object")
    )
    assert result.rows[0][1] == len(ROWS)


def test_hash_join_throughput(benchmark):
    build = [(i, f"n{i}") for i in range(2_000)]
    probe = [(i % 2_000, float(i)) for i in range(20_000)]
    out = benchmark(
        lambda: hash_join(build, ["id", "name"], probe, ["fk", "v"], "id", "fk")
    )
    assert len(out.rows) == 20_000


def test_batched_decode_throughput(benchmark):
    """Streaming batch decode vs one-shot materialization of the same CSV."""
    def batched():
        total = 0
        for batch in iter_decode_batches(DATA, FILTER_SCHEMA, has_header=False):
            total += len(batch)
        return total

    # Time the materialized path once by hand so the ratio lands in the
    # benchmark report next to the batched numbers.
    start = time.perf_counter()
    materialized = decode_table(DATA, FILTER_SCHEMA, has_header=False)
    materialized_s = time.perf_counter() - start

    total = benchmark(batched)
    assert total == len(materialized) == len(ROWS)
    benchmark.extra_info["materialized_seconds"] = round(materialized_s, 6)


def _timed_scan(ctx, table, workers: int, repeats: int = 3) -> tuple[float, list]:
    """Median wall-clock of a full-table SELECT at a worker count."""
    times = []
    rows = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows, _names = select_table(
            ctx, table, "SELECT key, p0 FROM S3Object", workers=workers
        )
        times.append(time.perf_counter() - start)
    return statistics.median(times), rows


def test_pruned_scan_request_reduction(benchmark):
    """Zone-map pruning on a clustered 16-partition scan must cut the
    metered request count; rows must be identical with pruning off.

    The request counts land in ``BENCH_throughput.json`` so CI archives
    the pruning win (requests, not just bytes) across commits.
    """
    from repro.planner.database import PushdownDB

    db = PushdownDB(bucket="prunebench")
    db.load_table(
        "clustered", clustered_filter_table(4_000, seed=7), FILTER_SCHEMA,
        partitions=16,
    )
    sql = "SELECT key, p0 FROM clustered WHERE key < 250"

    db.ctx.prune_partitions = False
    unpruned = db.execute(sql, mode="optimized")
    db.ctx.prune_partitions = True
    pruned = benchmark(lambda: db.execute(sql, mode="optimized"))

    assert sorted(pruned.rows) == sorted(unpruned.rows)
    assert pruned.num_requests < unpruned.num_requests

    entry = {
        "rows": 4_000,
        "partitions": 16,
        "requests_unpruned": unpruned.num_requests,
        "requests_pruned": pruned.num_requests,
        "request_reduction": round(
            1.0 - pruned.num_requests / unpruned.num_requests, 3
        ),
    }
    _THROUGHPUT["pruned_scan"] = entry
    benchmark.extra_info.update(entry)


def test_cached_scan_request_reduction(benchmark):
    """A repeated pushed scan must answer from the semantic cache with
    strictly fewer metered requests (zero, in fact) and identical rows.

    Cold vs warm requests and wall-clock land in
    ``BENCH_throughput.json`` so CI archives the caching win across
    commits; the warm < cold request assertion is the CI gate.
    """
    from repro.planner.database import PushdownDB

    db = PushdownDB(bucket="cachebench", cache_bytes=64 << 20)
    db.load_table(
        "cached", clustered_filter_table(4_000, seed=7), FILTER_SCHEMA,
        partitions=16,
    )
    sql = "SELECT key, p0 FROM cached WHERE key < 2000"

    start = time.perf_counter()
    cold = db.execute(sql, mode="optimized")
    cold_s = time.perf_counter() - start

    warm_s = _median_seconds(lambda: db.execute(sql, mode="optimized"))
    warm = benchmark(lambda: db.execute(sql, mode="optimized"))

    assert sorted(warm.rows) == sorted(cold.rows)
    assert warm.num_requests < cold.num_requests

    entry = {
        "rows": 4_000,
        "partitions": 16,
        "requests_cold": cold.num_requests,
        "requests_warm": warm.num_requests,
        "seconds_cold": round(cold_s, 6),
        "seconds_warm": round(warm_s, 6),
    }
    _THROUGHPUT["cached_scan"] = entry
    benchmark.extra_info.update(entry)


def test_concurrent_partition_scan_speedup(benchmark):
    """workers=4 must beat workers=1 by >=1.5x wall-clock on a 16-partition scan.

    The in-process store has no network, so a small per-request delay
    stands in for the S3 round-trip the worker pool exists to overlap.
    Rows and metered cost must be identical either way.
    """
    ctx = CloudContext()
    catalog = Catalog()
    table = load_table(
        ctx, catalog, "scanbench", filter_table(4_000, seed=7), FILTER_SCHEMA,
        bucket="bench", partitions=16,
    )
    ctx.client.request_delay = 0.015  # 15 ms simulated round-trip per request

    mark = ctx.metrics.mark()
    serial_s, serial_rows = _timed_scan(ctx, table, workers=1)
    serial_records = ctx.metrics.records_since(mark)

    mark = ctx.metrics.mark()
    concurrent_s, concurrent_rows = _timed_scan(ctx, table, workers=4)
    concurrent_records = ctx.metrics.records_since(mark)

    # Recorded with the simulated latency still active, so the benchmark
    # table shows the same conditions the speedup was measured under.
    benchmark.pedantic(
        lambda: select_table(ctx, table, "SELECT key, p0 FROM S3Object", workers=4),
        rounds=1, iterations=1,
    )
    ctx.client.request_delay = 0.0
    speedup = serial_s / concurrent_s
    benchmark.extra_info["serial_seconds"] = round(serial_s, 4)
    benchmark.extra_info["concurrent_seconds"] = round(concurrent_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    assert concurrent_rows == serial_rows
    assert sum(r.bytes_scanned for r in concurrent_records) == sum(
        r.bytes_scanned for r in serial_records
    )
    assert sum(r.bytes_returned for r in concurrent_records) == sum(
        r.bytes_returned for r in serial_records
    )
    assert speedup >= 1.5, (
        f"workers=4 only {speedup:.2f}x faster than workers=1"
        f" ({serial_s:.3f}s vs {concurrent_s:.3f}s)"
    )
