"""Microbenchmarks of the substrate itself (not a paper figure).

Measures the simulated S3 Select engine's scan throughput, the local
hash join, the batched vs materialized decode paths, and the wall-clock
effect of concurrent partition scans, so regressions in the substrate
are visible independently of the simulated-time results.
"""

import statistics
import time

from repro.cloud.context import CloudContext
from repro.engine.catalog import Catalog, load_table
from repro.engine.operators.hashjoin import hash_join
from repro.s3select.engine import execute_select
from repro.storage.csvcodec import decode_table, encode_table, iter_decode_batches
from repro.storage.object_store import StoredObject
from repro.strategies.scans import select_table
from repro.workloads.synthetic import FILTER_SCHEMA, filter_table

ROWS = filter_table(20_000, seed=3)
DATA, _ = encode_table(ROWS)
OBJ = StoredObject(
    DATA,
    {"format": "csv", "schema": [f"{c.name}:{c.type}" for c in FILTER_SCHEMA.columns],
     "header": False},
)


def test_select_scan_throughput(benchmark):
    result = benchmark(
        lambda: execute_select(OBJ, "SELECT key FROM S3Object WHERE key < 100")
    )
    assert len(result.rows) == 100
    benchmark.extra_info["rows_scanned"] = result.rows_scanned


def test_select_aggregate_throughput(benchmark):
    result = benchmark(
        lambda: execute_select(OBJ, "SELECT SUM(p0), COUNT(*) FROM S3Object")
    )
    assert result.rows[0][1] == len(ROWS)


def test_hash_join_throughput(benchmark):
    build = [(i, f"n{i}") for i in range(2_000)]
    probe = [(i % 2_000, float(i)) for i in range(20_000)]
    out = benchmark(
        lambda: hash_join(build, ["id", "name"], probe, ["fk", "v"], "id", "fk")
    )
    assert len(out.rows) == 20_000


def test_batched_decode_throughput(benchmark):
    """Streaming batch decode vs one-shot materialization of the same CSV."""
    def batched():
        total = 0
        for batch in iter_decode_batches(DATA, FILTER_SCHEMA, has_header=False):
            total += len(batch)
        return total

    # Time the materialized path once by hand so the ratio lands in the
    # benchmark report next to the batched numbers.
    start = time.perf_counter()
    materialized = decode_table(DATA, FILTER_SCHEMA, has_header=False)
    materialized_s = time.perf_counter() - start

    total = benchmark(batched)
    assert total == len(materialized) == len(ROWS)
    benchmark.extra_info["materialized_seconds"] = round(materialized_s, 6)


def _timed_scan(ctx, table, workers: int, repeats: int = 3) -> tuple[float, list]:
    """Median wall-clock of a full-table SELECT at a worker count."""
    times = []
    rows = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows, _names = select_table(
            ctx, table, "SELECT key, p0 FROM S3Object", workers=workers
        )
        times.append(time.perf_counter() - start)
    return statistics.median(times), rows


def test_concurrent_partition_scan_speedup(benchmark):
    """workers=4 must beat workers=1 by >=1.5x wall-clock on a 16-partition scan.

    The in-process store has no network, so a small per-request delay
    stands in for the S3 round-trip the worker pool exists to overlap.
    Rows and metered cost must be identical either way.
    """
    ctx = CloudContext()
    catalog = Catalog()
    table = load_table(
        ctx, catalog, "scanbench", filter_table(4_000, seed=7), FILTER_SCHEMA,
        bucket="bench", partitions=16,
    )
    ctx.client.request_delay = 0.015  # 15 ms simulated round-trip per request

    mark = ctx.metrics.mark()
    serial_s, serial_rows = _timed_scan(ctx, table, workers=1)
    serial_records = ctx.metrics.records_since(mark)

    mark = ctx.metrics.mark()
    concurrent_s, concurrent_rows = _timed_scan(ctx, table, workers=4)
    concurrent_records = ctx.metrics.records_since(mark)

    # Recorded with the simulated latency still active, so the benchmark
    # table shows the same conditions the speedup was measured under.
    benchmark.pedantic(
        lambda: select_table(ctx, table, "SELECT key, p0 FROM S3Object", workers=4),
        rounds=1, iterations=1,
    )
    ctx.client.request_delay = 0.0
    speedup = serial_s / concurrent_s
    benchmark.extra_info["serial_seconds"] = round(serial_s, 4)
    benchmark.extra_info["concurrent_seconds"] = round(concurrent_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    assert concurrent_rows == serial_rows
    assert sum(r.bytes_scanned for r in concurrent_records) == sum(
        r.bytes_scanned for r in serial_records
    )
    assert sum(r.bytes_returned for r in concurrent_records) == sum(
        r.bytes_returned for r in serial_records
    )
    assert speedup >= 1.5, (
        f"workers=4 only {speedup:.2f}x faster than workers=1"
        f" ({serial_s:.3f}s vs {concurrent_s:.3f}s)"
    )
