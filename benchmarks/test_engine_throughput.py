"""Microbenchmarks of the substrate itself (not a paper figure).

Measures the simulated S3 Select engine's scan throughput and the local
hash join, so regressions in the substrate are visible independently of
the simulated-time results.
"""

from repro.engine.operators.hashjoin import hash_join
from repro.s3select.engine import execute_select
from repro.storage.csvcodec import encode_table
from repro.storage.object_store import StoredObject
from repro.workloads.synthetic import FILTER_SCHEMA, filter_table

ROWS = filter_table(20_000, seed=3)
DATA, _ = encode_table(ROWS)
OBJ = StoredObject(
    DATA,
    {"format": "csv", "schema": [f"{c.name}:{c.type}" for c in FILTER_SCHEMA.columns],
     "header": False},
)


def test_select_scan_throughput(benchmark):
    result = benchmark(
        lambda: execute_select(OBJ, "SELECT key FROM S3Object WHERE key < 100")
    )
    assert len(result.rows) == 100
    benchmark.extra_info["rows_scanned"] = result.rows_scanned


def test_select_aggregate_throughput(benchmark):
    result = benchmark(
        lambda: execute_select(OBJ, "SELECT SUM(p0), COUNT(*) FROM S3Object")
    )
    assert result.rows[0][1] == len(ROWS)


def test_hash_join_throughput(benchmark):
    build = [(i, f"n{i}") for i in range(2_000)]
    probe = [(i % 2_000, float(i)) for i in range(20_000)]
    out = benchmark(
        lambda: hash_join(build, ["id", "name"], probe, ["fk", "v"], "id", "fk")
    )
    assert len(out.rows) == 20_000
