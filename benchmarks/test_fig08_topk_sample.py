"""Figure 8 bench: sampling top-K sensitivity to sample size."""

from conftest import emit, run_once
from repro.experiments import fig08_topk_sample


def test_fig08_topk_sample(benchmark, capsys):
    result = run_once(benchmark, lambda: fig08_topk_sample.run(scale_factor=0.01))
    emit(capsys, result)
    sample = [r["sample_phase_s"] for r in result.rows]
    scan = [r["scan_phase_s"] for r in result.rows]
    total = [r["runtime_s"] for r in result.rows]
    assert sample == sorted(sample)
    assert scan == sorted(scan, reverse=True)
    # The total is minimized strictly inside the sweep (V-shape).
    assert min(total) < min(total[0], total[-1])
