"""Figure 12 bench: 3-way join-order sweep vs the cost-based pick."""

from conftest import emit, run_once
from repro.experiments import fig12_multijoin


def test_fig12_multijoin(benchmark, capsys):
    result = run_once(benchmark, lambda: fig12_multijoin.run(scale_factor=0.005))
    emit(capsys, result)
    orders = {r["strategy"] for r in result.rows} - {"auto"}
    assert len(orders) == 4  # chain c-o-l: four connected left-deep orders
    # The search must agree with the measured-best order at most points;
    # near a crossover (PR 4's inner-probe Blooms put the two best
    # orders within a fraction of a percent of each other in the model)
    # a miss is tolerated only while the pick's measured cost stays
    # within a small regret bound of the winner — the same standard the
    # optimizer-crossover CI gate applies.
    agreed, total = result.notes["agreement"].split("/")
    assert int(agreed) >= int(total) - 1
    for value in {r["upper_o_orderdate"] for r in result.rows}:
        point = [r for r in result.rows if r["upper_o_orderdate"] == value]
        auto = next(r for r in point if r["strategy"] == "auto")
        best = min(
            r["cost_total"] for r in point if r["strategy"] != "auto"
        )
        assert auto["cost_total"] <= best * 1.06
    # Auto never does worse than the worst forced order.
    for value in {r["upper_o_orderdate"] for r in result.rows}:
        point = [r for r in result.rows if r["upper_o_orderdate"] == value]
        auto = next(r for r in point if r["strategy"] == "auto")
        worst = max(
            r["cost_total"] for r in point if r["strategy"] != "auto"
        )
        assert auto["cost_total"] <= worst * (1 + 1e-9)
