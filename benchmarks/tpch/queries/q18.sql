-- TPC-H Q18: large volume customer (IN over a grouped+HAVING subquery).
-- Adaptation: the quantity threshold is 250 instead of the spec's
-- 300-315 band so the reduced-scale generator yields a non-empty
-- answer (line counts cap at 7 per order).
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       SUM(l_quantity) AS total_qty
FROM customer, orders, lineitem
WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                     GROUP BY l_orderkey
                     HAVING SUM(l_quantity) > 250)
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
