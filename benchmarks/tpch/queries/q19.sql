-- TPC-H Q19: discounted revenue (disjunctive mixed-table predicate kept
-- as a residual filter above the join).
-- Adaptation: ship modes are ('AIR', 'REG AIR') — the generator's
-- vocabulary spells the spec's 'AIR REG' as 'REG AIR'.
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND l_shipmode IN ('AIR', 'REG AIR')
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity BETWEEN 1 AND 11
        AND p_size BETWEEN 1 AND 5)
       OR (p_brand = 'Brand#23'
           AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
           AND l_quantity BETWEEN 10 AND 20
           AND p_size BETWEEN 1 AND 10)
       OR (p_brand = 'Brand#34'
           AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
           AND l_quantity BETWEEN 20 AND 30
           AND p_size BETWEEN 1 AND 15))
