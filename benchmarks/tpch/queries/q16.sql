-- TPC-H Q16: parts/supplier relationship (NOT IN -> NULL-aware anti
-- join, COUNT(DISTINCT ...)).
-- Adaptation: the excluded-supplier comment pattern is '%blue%' — the
-- generator's comment corpus is a color-word vocabulary, so the spec's
-- '%Customer%Complaints%' would never match.
SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%blue%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
