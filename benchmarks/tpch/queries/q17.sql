-- TPC-H Q17: small-quantity-order revenue (correlated scalar aggregate
-- -> grouped build joined back on p_partkey).
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l_quantity < 0.2 * (SELECT AVG(l_quantity) FROM lineitem
                          WHERE l_partkey = p_partkey)
