-- TPC-H Q21: suppliers who kept orders waiting (EXISTS and NOT EXISTS
-- with non-equality correlated residuals).
-- Adaptation: no table aliases, so the spec's l2/l3 lineitem instances
-- are the prefixed aux copies lineitem2 (l2_*) and lineitem3 (l3_*).
SELECT s_name, COUNT(*) AS numwait
FROM supplier, lineitem, orders, nation
WHERE s_suppkey = l_suppkey
  AND o_orderkey = l_orderkey
  AND o_orderstatus = 'F'
  AND l_receiptdate > l_commitdate
  AND EXISTS (SELECT 1 FROM lineitem2
              WHERE l2_orderkey = l_orderkey
                AND l2_suppkey <> l_suppkey)
  AND NOT EXISTS (SELECT 1 FROM lineitem3
                  WHERE l3_orderkey = l_orderkey
                    AND l3_suppkey <> l_suppkey
                    AND l3_receiptdate > l3_commitdate)
  AND s_nationkey = n_nationkey
  AND n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100
