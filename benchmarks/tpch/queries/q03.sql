-- TPC-H Q3: shipping priority.
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
