-- TPC-H Q14: promotion effect.
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
