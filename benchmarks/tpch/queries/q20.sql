-- TPC-H Q20: potential part promotion (nested IN + correlated scalar
-- with a two-column correlation key).
-- Adaptation: p_name LIKE 'a%' — the generator's part-name corpus is a
-- color-word vocabulary without the spec's 'forest' prefix.
SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN (SELECT ps_suppkey FROM partsupp
                    WHERE ps_partkey IN (SELECT p_partkey FROM part
                                         WHERE p_name LIKE 'a%')
                      AND ps_availqty > 0.5 * (SELECT SUM(l_quantity)
                                               FROM lineitem
                                               WHERE l_partkey = ps_partkey
                                                 AND l_suppkey = ps_suppkey
                                                 AND l_shipdate >= DATE '1994-01-01'
                                                 AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR))
  AND s_nationkey = n_nationkey
  AND n_name = 'CANADA'
ORDER BY s_name
