-- TPC-H Q15: top supplier.
-- Adaptation: the revenue view is inlined — the HAVING clause compares
-- against MAX over the same per-supplier aggregation as a derived
-- table.  Revenues are ROUNDed on both sides so the equality is immune
-- to float summation order (different plans sum in different orders).
SELECT s_suppkey, s_name, s_address, s_phone,
       SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
FROM supplier, lineitem
WHERE s_suppkey = l_suppkey
  AND l_shipdate >= DATE '1996-01-01'
  AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
GROUP BY s_suppkey, s_name, s_address, s_phone
HAVING ROUND(SUM(l_extendedprice * (1 - l_discount))) =
       (SELECT MAX(ROUND(total_revenue))
        FROM (SELECT SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
              FROM lineitem
              WHERE l_shipdate >= DATE '1996-01-01'
                AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
              GROUP BY l_suppkey) AS revenue0)
ORDER BY s_suppkey
