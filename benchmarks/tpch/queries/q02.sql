-- TPC-H Q2: minimum-cost supplier.
-- Adaptation: the dialect has no table aliases, so the correlated
-- MIN(ps_supplycost) subquery reads the prefixed aux copies partsupp2 /
-- supplier2 / nation2 / region2 instead of re-aliasing the base tables.
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr,
       s_address, s_phone, s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey
  AND s_suppkey = ps_suppkey
  AND p_size = 15
  AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (SELECT MIN(ps2_supplycost)
                       FROM partsupp2, supplier2, nation2, region2
                       WHERE p_partkey = ps2_partkey
                         AND s2_suppkey = ps2_suppkey
                         AND s2_nationkey = n2_nationkey
                         AND n2_regionkey = r2_regionkey
                         AND r2_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100
