-- TPC-H Q9: product type profit measure.
-- Adaptations: p_name LIKE '%blue%' (the generator's part-name corpus is
-- a color-word vocabulary; the spec's '%green%' is not in it);
-- EXTRACT(YEAR ...) is spelled CAST(SUBSTR(date, 1, 4) AS INT).
SELECT nation, o_year, SUM(amount) AS sum_profit
FROM (SELECT n_name AS nation,
             CAST(SUBSTR(o_orderdate, 1, 4) AS INT) AS o_year,
             l_extendedprice * (1 - l_discount)
               - ps_supplycost * l_quantity AS amount
      FROM part, supplier, lineitem, partsupp, orders, nation
      WHERE s_suppkey = l_suppkey
        AND ps_suppkey = l_suppkey
        AND ps_partkey = l_partkey
        AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey
        AND s_nationkey = n_nationkey
        AND p_name LIKE '%blue%') AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC
