-- TPC-H Q13: customer distribution (LEFT OUTER JOIN inside a derived
-- table; COUNT(o_orderkey) skips the NULL pads).
-- Adaptation: the spec's o_comment NOT LIKE '%special%requests%' is
-- '%blue%almond%' here — the generator's comment corpus is a color-word
-- vocabulary, so the spec pattern would never match anything.
SELECT c_count, COUNT(*) AS custdist
FROM (SELECT c_custkey, COUNT(o_orderkey) AS c_count
      FROM customer LEFT OUTER JOIN orders
        ON c_custkey = o_custkey
       AND o_comment NOT LIKE '%blue%almond%'
      GROUP BY c_custkey) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
