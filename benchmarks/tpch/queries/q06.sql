-- TPC-H Q6: forecasting revenue change.
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
