-- TPC-H Q22: global sales opportunity (derived table whose body carries
-- an uncorrelated scalar subquery and a NOT EXISTS anti join).
-- Adaptation: country codes are drawn from the generator's phone format
-- (10 + nationkey), so the IN list uses codes in that 10..34 range.
SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
FROM (SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, c_acctbal
      FROM customer
      WHERE SUBSTR(c_phone, 1, 2) IN ('13', '17', '18', '23', '29', '30', '31')
        AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer
                         WHERE c_acctbal > 0.00
                           AND SUBSTR(c_phone, 1, 2)
                               IN ('13', '17', '18', '23', '29', '30', '31'))
        AND NOT EXISTS (SELECT 1 FROM orders
                        WHERE o_custkey = c_custkey)) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode
