-- TPC-H Q7: volume shipping.
-- Adaptation: no table aliases, so the second nation instance is the
-- prefixed aux copy nation2 (n2_*).
SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue
FROM (SELECT n_name AS supp_nation,
             n2_name AS cust_nation,
             CAST(SUBSTR(l_shipdate, 1, 4) AS INT) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM supplier, lineitem, orders, customer, nation, nation2
      WHERE s_suppkey = l_suppkey
        AND o_orderkey = l_orderkey
        AND c_custkey = o_custkey
        AND s_nationkey = n_nationkey
        AND c_nationkey = n2_nationkey
        AND ((n_name = 'FRANCE' AND n2_name = 'GERMANY')
             OR (n_name = 'GERMANY' AND n2_name = 'FRANCE'))
        AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') AS shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
