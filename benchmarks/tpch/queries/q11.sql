-- TPC-H Q11: important stock identification (HAVING over an
-- uncorrelated scalar subquery).
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey
  AND s_nationkey = n_nationkey
  AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING SUM(ps_supplycost * ps_availqty) >
       (SELECT SUM(ps2_supplycost * ps2_availqty) * 0.0001
        FROM partsupp2, supplier2, nation2
        WHERE ps2_suppkey = s2_suppkey
          AND s2_nationkey = n2_nationkey
          AND n2_name = 'GERMANY')
ORDER BY value DESC
