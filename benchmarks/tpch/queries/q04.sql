-- TPC-H Q4: order priority checking (correlated EXISTS -> semi join).
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
  AND EXISTS (SELECT 1 FROM lineitem
              WHERE l_orderkey = o_orderkey
                AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority
