-- TPC-H Q8: national market share.
-- Adaptations: no table aliases (second nation instance is the aux copy
-- nation2); EXTRACT(YEAR ...) is spelled CAST(SUBSTR(date, 1, 4) AS INT).
SELECT o_year,
       SUM(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END)
         / SUM(volume) AS mkt_share
FROM (SELECT CAST(SUBSTR(o_orderdate, 1, 4) AS INT) AS o_year,
             l_extendedprice * (1 - l_discount) AS volume,
             n2_name AS nation
      FROM part, supplier, lineitem, orders, customer, nation, nation2, region
      WHERE p_partkey = l_partkey
        AND s_suppkey = l_suppkey
        AND l_orderkey = o_orderkey
        AND o_custkey = c_custkey
        AND c_nationkey = n_nationkey
        AND n_regionkey = r_regionkey
        AND r_name = 'AMERICA'
        AND s_nationkey = n2_nationkey
        AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        AND p_type = 'ECONOMY ANODIZED STEEL') AS all_nations
GROUP BY o_year
ORDER BY o_year
