-- TPC-H Q10: returned item reporting.
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20
