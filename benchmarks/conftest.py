"""Benchmark harness plumbing.

Each benchmark runs one paper-figure experiment end to end (data
generation, load, every swept query) and prints the reproduced
rows/series — the same numbers the paper's figure plots — to the
terminal, bypassing capture so they land in ``bench_output.txt``.
"""

from __future__ import annotations


def emit(capsys, result) -> None:
    """Print an ExperimentResult table outside pytest's capture."""
    with capsys.disabled():
        print()
        print(result.to_table())


def run_once(benchmark, fn):
    """Run a deterministic, heavy experiment exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
